"""Iteration-time simulator: prices a SyncPlan on a cluster.

Composes four ingredients into per-iteration wall-clock time:

1. **Compute** -- the calibrated single-GPU fwd+bwd time (all replicas in
   parallel).
2. **Collective communication** -- ring AllReduce at machine granularity
   (NCCL builds hierarchical rings; intra-machine hops ride PCIe) and ring
   AllGatherv at worker granularity over the slower MPI path.
3. **PS communication** -- pull and push flow matrices priced by the
   max-min fair fluid network model (this is where the PS hot-spot
   asymmetry emerges) and by per-worker stream limits.
4. **CPU-side work** -- sparse gradient aggregation parallelized across
   partitions and server threads (the 1/P term of the paper's Equation 1),
   partition stitching (the theta2*P term), per-shard RPC overhead, and
   synchronization bookkeeping.

The hybrid architecture's advantage appears naturally: its collective and
PS phases use disjoint transports and overlap (``max``), while each pure
architecture pays its own full cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.cluster.costmodel import CostModel, DEFAULT_COST_MODEL, union_alpha
from repro.cluster.faults import FaultPlan
from repro.cluster.network import Flow, simulate_flows
from repro.cluster.plan import SyncPlan, VariableAssignment
from repro.cluster.spec import ClusterSpec
from repro.comm.ps import place_variables
from repro.nn.profiles import ModelProfile


@dataclass(frozen=True)
class Shard:
    """One placed partition of a PS variable."""

    name: str
    nbytes: float
    num_elements: float
    is_sparse: bool
    alpha: float
    server: int
    num_partitions: int


@dataclass
class IterationBreakdown:
    """Where one iteration's time goes."""

    compute_time: float
    allreduce_time: float
    gatherv_time: float
    gatherv_apply_time: float
    ps_network_time: float
    ps_rpc_time: float
    server_cpu_time: float
    local_agg_time: float
    stitch_time: float
    sync_overhead_time: float
    ps_flow_bytes: Dict[Tuple[int, int], float] = field(default_factory=dict)
    # Bucketed (fusion-aware) AllReduce accounting: the raw collective
    # time before overlap with backward compute, and how many fusion
    # buckets (= collectives) it was priced over.  Zero under legacy
    # aggregate pricing (SyncPlan.fusion_buffer_mb is None).
    allreduce_raw_time: float = 0.0
    num_ar_buckets: int = 0
    # Gradient-compression accounting: one worker's per-iteration
    # collective payload, uncompressed vs on the wire (equal when the
    # plan does not compress), plus the compress/decompress compute time
    # the codec costs.  The raw-vs-wire pair is what lets a caller (see
    # :func:`pick_plan_under_budget`) hold plans to a bandwidth budget.
    collective_raw_bytes: float = 0.0
    collective_wire_bytes: float = 0.0
    compress_time: float = 0.0

    @property
    def collective_time(self) -> float:
        return (self.allreduce_time + self.gatherv_time
                + self.gatherv_apply_time)

    @property
    def ps_time(self) -> float:
        return self.ps_network_time + self.ps_rpc_time

    @property
    def iteration_time(self) -> float:
        """Total seconds per iteration.

        Collectives and PS traffic use disjoint transports (NCCL/MPI vs
        gRPC) and overlap; CPU-side aggregation, stitching, sync
        bookkeeping, and gradient compress/decompress serialize with
        communication.
        """
        comm = max(self.collective_time, self.ps_time)
        return (self.compute_time + comm + self.server_cpu_time
                + self.local_agg_time + self.stitch_time
                + self.sync_overhead_time + self.compress_time)


def shard_assignments(plan: SyncPlan, cluster: ClusterSpec) -> List[Shard]:
    """Split PS variables into shards and place them on server machines."""
    pieces: List[Tuple[str, VariableAssignment, int]] = []
    for a in plan.ps_assignments:
        for p in range(a.num_partitions):
            pieces.append((f"{a.variable.name}/part_{p}", a, p))
    placement = place_variables(
        [(name, a.shard_nbytes) for name, a, _ in pieces],
        cluster.num_machines,
    )
    shards = []
    for name, a, _ in pieces:
        shards.append(
            Shard(
                name=name,
                nbytes=a.variable.nbytes / a.num_partitions,
                num_elements=a.variable.num_elements / a.num_partitions,
                is_sparse=a.variable.is_sparse,
                alpha=a.variable.alpha,
                server=placement[name],
                num_partitions=a.num_partitions,
            )
        )
    return shards


def _collective_times(plan: SyncPlan, cluster: ClusterSpec,
                      cost: CostModel, compute_time: float = 0.0,
                      ) -> Tuple[float, float, float, float, int,
                                 float, float, float]:
    """(allreduce, gatherv, gatherv-apply, allreduce-raw, buckets,
    raw-bytes, wire-bytes, compress) accounting for one iteration.

    AllReduce pricing has two modes.  Legacy aggregate (the plan's
    ``fusion_buffer_mb`` is None): one ring over all dense bytes, as if
    collectives were free to launch and never overlapped compute.
    Bucketed: each fusion bucket pays its own ring (latency x buckets +
    bandwidth terms) plus a per-collective launch cost, and up to
    ``ar_overlap`` of *compute_time* (the profile's whole-iteration GPU
    time; the default overlap fraction approximates the backward share of
    it) hides the total -- collectives launch as each bucket's last
    gradient becomes ready, so fewer, larger buckets amortize launches
    while small ones expose them.

    Compression scales every collective payload by the plan's wire
    fraction and adds encode/decode compute.  Quantized (fp16) payloads
    still ride the ring; sparsified (top-k) payloads exchange
    allgather-style -- a sum of top-k sets is not top-k -- so each
    machine ingests every other worker's payload, exactly like the
    functional plane's compressed collectives.
    """
    n, g = cluster.num_machines, cluster.gpus_per_machine
    w = cluster.total_gpus
    fraction = plan.compressed_fraction
    sparsified = (plan.compression is not None
                  and "topk" in plan.compression)

    def ring_time(nbytes: float) -> float:
        t = 0.0
        if n > 1:
            # Machine-level hierarchical ring: 2(N-1) steps of D/N each.
            t += 2 * (n - 1) * (nbytes / n / cost.nccl_bw
                                + cost.step_latency)
        if g > 1:
            t += 2 * (g - 1) * (nbytes / g / cost.intra_bw
                                + cost.step_latency)
        return t

    def exchange_time(nbytes: float) -> float:
        # All-to-all payload exchange: each machine ingests every other
        # worker's payload of *nbytes* (the same bound the AllGatherv
        # pricing uses, on the NCCL transport).
        bw = cost.nccl_bw if n > 1 else cost.intra_bw
        return g * (w - 1) * nbytes / bw + (w - 1) * cost.step_latency

    ar_collective_time = exchange_time if sparsified else ring_time

    ar_time = 0.0
    ar_raw = 0.0
    num_buckets = 0
    num_collectives = 0
    dense_bytes = plan.allreduce_bytes
    if dense_bytes and w > 1:
        if plan.fusion_buffer_mb is None:
            ar_time = ar_collective_time(dense_bytes * fraction)
            num_collectives = 1
        else:
            buckets = plan.allreduce_buckets()  # already wire-sized
            num_buckets = num_collectives = len(buckets)
            ar_raw = (sum(ar_collective_time(b) for b in buckets)
                      + cost.c_collective_launch * num_buckets)
            ar_time = max(0.0, ar_raw - cost.ar_overlap * compute_time)

    gatherv_time = 0.0
    apply_time = 0.0
    gatherv_payload = sum(
        a.variable.alpha * a.variable.nbytes
        for a in plan.gatherv_assignments
    )
    if gatherv_payload and w > 1:
        # Every worker must receive every other worker's payload, so each
        # machine's NIC ingests G * (W-1) * payload bytes regardless of the
        # gather schedule -- the binding constraint at scale.
        per_machine = g * (w - 1) * gatherv_payload * fraction
        gatherv_time = (per_machine / cost.mpi_bw
                        + (w - 1) * cost.step_latency)
        gathered_elements = w * sum(
            a.variable.alpha * a.variable.num_elements
            for a in plan.gatherv_assignments
        )
        if sparsified:
            gathered_elements *= plan.compression_ratio
        # Every replica applies the full gathered update locally.
        apply_time = gathered_elements * cost.c_apply_gathered

    # ---- compression accounting (raw vs wire payload + codec compute) --
    raw_bytes = float(dense_bytes + gatherv_payload) if w > 1 else 0.0
    wire_bytes = raw_bytes * fraction
    compress_time = 0.0
    if plan.compression is not None and raw_bytes and w > 1:
        elements = raw_bytes / 4.0
        # Encode own contribution once; decode what arrives: top-k
        # decodes every worker's kept coordinates, quantization decodes
        # the one reduced buffer the ring delivers.
        decode_elements = (w * plan.compression_ratio * elements
                           if sparsified else elements)
        launches = num_collectives + len(plan.gatherv_assignments)
        compress_time = (launches * cost.c_compress_launch
                         + (elements + decode_elements)
                         / cost.compress_throughput)

    return (ar_time, gatherv_time, apply_time, ar_raw, num_buckets,
            raw_bytes, wire_bytes, compress_time)


def _ps_times(plan: SyncPlan, cluster: ClusterSpec, cost: CostModel,
              shards: List[Shard], compute_time: float):
    """PS network, RPC, server CPU, local agg, stitch, sync times.

    Dense and sparse traffic are priced separately: dense pulls/pushes
    pipeline with layer-wise forward/backward compute (TF issues them as
    each layer needs its variables), so up to ``dense_ps_overlap *
    compute_time`` of dense transfer hides under compute.  Sparse
    embedding traffic sits at the iteration boundary (pull before step 0,
    push after the last backward op) and cannot hide.
    """
    n, g, w = (cluster.num_machines, cluster.gpus_per_machine,
               cluster.total_gpus)
    if not shards:
        return 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, {}

    def pull_bytes(shard: Shard) -> float:
        return shard.alpha * shard.nbytes if shard.is_sparse else shard.nbytes

    def push_bytes_worker(shard: Shard) -> float:
        return shard.alpha * shard.nbytes if shard.is_sparse else shard.nbytes

    def push_bytes_machine(shard: Shard) -> float:
        if shard.is_sparse:
            eff = union_alpha(shard.alpha, g, cost.zipf_overlap)
            return eff * shard.nbytes
        return shard.nbytes

    # ---- flow matrices (machine granularity), dense/sparse separate ----
    matrix: Dict[Tuple[int, int], float] = {}
    flows: Dict[bool, List[Flow]] = {True: [], False: []}

    def add_flow(src: int, dst: int, nbytes: float, stage: int,
                 sparse: bool) -> None:
        if src == dst or nbytes <= 0:
            return
        matrix[(src, dst)] = matrix.get((src, dst), 0.0) + nbytes
        flows[sparse].append(Flow(src, dst, nbytes, stage=stage))

    for shard in shards:
        for m in range(n):
            if m == shard.server:
                continue
            add_flow(shard.server, m, g * pull_bytes(shard), 0,
                     shard.is_sparse)

    for shard in shards:
        for m in range(n):
            if m == shard.server:
                continue
            if plan.local_aggregation:
                add_flow(m, shard.server, push_bytes_machine(shard), 1,
                         shard.is_sparse)
            else:
                add_flow(m, shard.server, g * push_bytes_worker(shard), 1,
                         shard.is_sparse)

    if not plan.smart_placement:
        # Aggregation/update ops end up on the chief worker's machine
        # (machine 0) instead of the owning server: aggregated gradients
        # make an extra network hop chief -> server.
        for shard in shards:
            contributors = n if plan.local_aggregation else w
            agg_bytes = (
                union_alpha(shard.alpha, contributors, cost.zipf_overlap)
                * shard.nbytes if shard.is_sparse else shard.nbytes
            )
            if shard.server != 0:
                add_flow(0, shard.server, agg_bytes, 2, shard.is_sparse)

    # ---- per-worker stream limits, dense/sparse separate ---------------
    # Worker 0 of each machine is the local chief (does the machine push
    # under local aggregation).  Streams of one worker serialize.
    def stream_time(sparse: bool) -> float:
        worst = 0.0
        for m in range(n):
            for j in range(g):
                load = 0.0
                for shard in shards:
                    if shard.server == m or shard.is_sparse is not sparse:
                        continue
                    load += pull_bytes(shard)
                    if plan.local_aggregation:
                        if j == 0:
                            load += push_bytes_machine(shard)
                    else:
                        load += push_bytes_worker(shard)
                worst = max(worst, load / cost.worker_stream_bw)
        return worst

    dense_raw = max(simulate_flows(flows[False], cost.ps_nic_bw),
                    stream_time(False))
    sparse_raw = max(simulate_flows(flows[True], cost.ps_nic_bw),
                     stream_time(True))
    hidden = cost.dense_ps_overlap * compute_time
    ps_network = max(0.0, dense_raw - hidden) + sparse_raw

    # ---- per-variable request overhead ---------------------------------
    # Pull/push RPCs are issued per variable; TF 1.x pipelines them poorly,
    # so models with many variables (Inception: ~100) pay proportionally.
    rpc_time = cost.c_rpc_per_variable * len(plan.ps_assignments)

    # ---- server-side CPU: sparse aggregation + pull gather -------------
    # Work per sparse variable: serving pulls (gather rows for W workers)
    # plus aggregating pushes.  Parallelism: shards spread over server
    # threads; the makespan is bounded below by both total-work/threads
    # and the largest single-shard task (the 1/P term of Equation 1).
    total_threads = n * cost.agg_threads_per_machine
    total_work = 0.0
    max_task = 0.0
    for a in plan.ps_assignments:
        v = a.variable
        if v.is_sparse:
            contributors = n if plan.local_aggregation else w
            contrib_alpha = (
                union_alpha(v.alpha, g, cost.zipf_overlap)
                if plan.local_aggregation else v.alpha
            )
            work = (w * v.alpha * v.num_elements            # pull gathers
                    + contributors * contrib_alpha * v.num_elements)
            work *= cost.c_agg_sparse
            # Sparse aggregation (index dedup + scattered accumulate) is
            # serial within one shard; a variable's minimum latency is one
            # shard's work -- the 1/P term of Equation 1.
            max_task = max(max_task, work / a.num_partitions)
        else:
            contributors = n if plan.local_aggregation else w
            # Dense summation vectorizes across threads inside one op, so
            # it only contributes to the total-work bound.
            work = contributors * v.num_elements * cost.c_agg_dense
        total_work += work
    server_cpu = max(total_work / total_threads, max_task)

    # ---- local aggregation CPU (on every worker machine, in parallel) --
    local_agg_time = 0.0
    if plan.local_aggregation:
        per_machine = 0.0
        for a in plan.ps_assignments:
            v = a.variable
            if v.is_sparse:
                per_machine += (g * v.alpha * v.num_elements
                                * cost.c_agg_sparse)
            else:
                per_machine += g * v.num_elements * cost.c_agg_dense
        local_agg_time = per_machine / cost.agg_threads_per_machine

    # ---- worker-side stitching of partitioned reads (theta2 * P) -------
    stitch_time = cost.c_stitch * sum(
        a.num_partitions for a in plan.ps_assignments
        if a.variable.is_sparse and a.num_partitions > 1
    )

    # ---- synchronous-training bookkeeping ------------------------------
    num_sparse = sum(1 for a in plan.ps_assignments if a.variable.is_sparse)
    sync_scale = 1.0 if not plan.local_aggregation else 1.0 / g
    sync_time = cost.c_sync_per_worker * w * num_sparse * sync_scale

    return (ps_network, rpc_time, server_cpu, local_agg_time, stitch_time,
            sync_time, matrix)


def simulate_iteration(
    profile: ModelProfile,
    plan: SyncPlan,
    cluster: ClusterSpec,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> IterationBreakdown:
    """Price one training iteration of *plan* on *cluster*.

    A single-GPU cluster runs the original undistributed graph (as the
    paper's 1-GPU baselines do), so it pays compute time only.
    """
    if cluster.total_gpus == 1:
        return IterationBreakdown(
            compute_time=profile.gpu_time_per_iter,
            allreduce_time=0.0, gatherv_time=0.0, gatherv_apply_time=0.0,
            ps_network_time=0.0, ps_rpc_time=0.0, server_cpu_time=0.0,
            local_agg_time=0.0, stitch_time=0.0, sync_overhead_time=0.0,
        )
    (ar_time, gatherv_time, apply_time, ar_raw, num_buckets,
     raw_bytes, wire_bytes, compress_time) = \
        _collective_times(plan, cluster, cost, profile.gpu_time_per_iter)
    shards = shard_assignments(plan, cluster)
    (ps_network, rpc_time, server_cpu, local_agg, stitch, sync,
     matrix) = _ps_times(plan, cluster, cost, shards,
                         profile.gpu_time_per_iter)
    return IterationBreakdown(
        compute_time=profile.gpu_time_per_iter,
        allreduce_time=ar_time,
        gatherv_time=gatherv_time,
        gatherv_apply_time=apply_time,
        ps_network_time=ps_network,
        ps_rpc_time=rpc_time,
        server_cpu_time=server_cpu,
        local_agg_time=local_agg,
        stitch_time=stitch,
        sync_overhead_time=sync,
        ps_flow_bytes=matrix,
        allreduce_raw_time=ar_raw,
        num_ar_buckets=num_buckets,
        collective_raw_bytes=raw_bytes,
        collective_wire_bytes=wire_bytes,
        compress_time=compress_time,
    )


# ======================================================================
# Elastic runtime pricing: checkpoints, recovery, rescale, goodput.
# ======================================================================
def plan_state_bytes(plan: SyncPlan) -> float:
    """Bytes of logical state a checkpoint of *plan*'s model carries."""
    return float(sum(a.variable.nbytes for a in plan.assignments))


@dataclass(frozen=True)
class RecoveryBreakdown:
    """Where the downtime of one worker-failure recovery goes."""

    detect_time: float
    respawn_time: float
    restore_time: float
    recompile_time: float
    lost_iterations: int
    lost_time: float

    @property
    def downtime(self) -> float:
        """Non-productive seconds: everything but the replayed compute."""
        return (self.detect_time + self.respawn_time + self.restore_time
                + self.recompile_time)

    @property
    def total_time(self) -> float:
        return self.downtime + self.lost_time


def simulate_recovery(
    profile: ModelProfile,
    plan: SyncPlan,
    cluster: ClusterSpec,
    iterations_since_checkpoint: int,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> RecoveryBreakdown:
    """Price one restore-from-checkpoint recovery after a worker kill.

    The failed worker is detected (heartbeat deadline), respawned, every
    machine reloads the last checkpoint from local storage and the
    restored state fans out to the replicas over the PS transport, the
    step plans recompile for every replica, and the iterations since the
    last checkpoint are trained again at the fault-free rate.
    """
    if iterations_since_checkpoint < 0:
        raise ValueError("iterations_since_checkpoint must be >= 0")
    state = plan_state_bytes(plan)
    iter_time = simulate_iteration(profile, plan, cluster, cost).iteration_time
    return RecoveryBreakdown(
        detect_time=cost.c_failure_detect,
        respawn_time=cost.c_worker_respawn,
        restore_time=state / cost.ckpt_bw + state / cost.ps_nic_bw,
        recompile_time=cost.c_plan_compile * cluster.total_gpus,
        lost_iterations=iterations_since_checkpoint,
        lost_time=iterations_since_checkpoint * iter_time,
    )


@dataclass(frozen=True)
class RescaleBreakdown:
    """Downtime of one planned N->M rescale."""

    snapshot_time: float
    migrate_time: float
    recompile_time: float

    @property
    def downtime(self) -> float:
        return self.snapshot_time + self.migrate_time + self.recompile_time


def simulate_rescale(
    plan: SyncPlan,
    old_cluster: ClusterSpec,
    new_cluster: ClusterSpec,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> RescaleBreakdown:
    """Price migrating logical state from *old_cluster* to *new_cluster*.

    Snapshot at checkpoint bandwidth, move the state across the NIC once
    (dense replicas re-seed from the snapshot; sparse PS shards re-split
    into the new placement), then recompile one step plan per new replica.
    """
    state = plan_state_bytes(plan)
    return RescaleBreakdown(
        snapshot_time=state / cost.ckpt_bw,
        migrate_time=state / cost.ps_nic_bw,
        recompile_time=cost.c_plan_compile * new_cluster.total_gpus,
    )


@dataclass(frozen=True)
class GoodputReport:
    """Effective training rate under a failure schedule."""

    total_iterations: int
    total_time: float
    fault_free_time: float
    downtime: float
    replayed_iterations: int
    checkpoint_time: float
    num_failures: int
    num_degraded_iterations: int
    units_per_second: float
    fault_free_units_per_second: float

    @property
    def goodput_fraction(self) -> float:
        """Goodput relative to the fault-free run (1.0 = no loss)."""
        if self.fault_free_units_per_second == 0:
            return 0.0
        return self.units_per_second / self.fault_free_units_per_second


def simulate_goodput(
    profile: ModelProfile,
    plan: SyncPlan,
    cluster: ClusterSpec,
    total_iterations: int,
    checkpoint_every: int = 1,
    faults: FaultPlan = FaultPlan(),
    cost: CostModel = DEFAULT_COST_MODEL,
) -> GoodputReport:
    """Walk a training timeline under *faults* and price the goodput.

    Iterations advance at the (possibly NIC-degraded) simulated rate;
    every ``checkpoint_every`` completed iterations pays a checkpoint
    write; each scheduled worker kill fires once, costs a
    :func:`simulate_recovery` downtime, and rolls the iteration pointer
    back to the last checkpoint (the replayed work is real time with no
    progress).  Goodput counts only the ``total_iterations`` distinct
    iterations' worth of samples.
    """
    if total_iterations < 1:
        raise ValueError("total_iterations must be >= 1")
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")

    iter_time_cache: Dict[float, float] = {}

    def iter_time(factor: float) -> float:
        if factor not in iter_time_cache:
            priced_cost = cost if factor == 1.0 else cost.degraded(factor)
            iter_time_cache[factor] = simulate_iteration(
                profile, plan, cluster, priced_cost).iteration_time
        return iter_time_cache[factor]

    ckpt_time = plan_state_bytes(plan) / cost.ckpt_bw
    fired: set = set()
    total_time = 0.0
    downtime = 0.0
    checkpoint_time = 0.0
    replayed = 0
    degraded_iters = 0
    last_checkpoint = 0
    i = 0
    while i < total_iterations:
        failure = next(
            (f for f in faults.failures_at(i)
             if f not in fired and f.worker < cluster.total_gpus), None)
        if failure is not None:
            fired.add(failure)
            recovery = simulate_recovery(profile, plan, cluster,
                                         i - last_checkpoint, cost)
            # Replayed compute is walked again below (at its possibly
            # degraded rate), so only the downtime is added here.
            total_time += recovery.downtime
            downtime += recovery.downtime
            replayed += i - last_checkpoint
            i = last_checkpoint
            continue
        factor = faults.nic_factor(i)
        if factor < 1.0:
            degraded_iters += 1
        total_time += iter_time(factor)
        i += 1
        if i % checkpoint_every == 0 or i == total_iterations:
            total_time += ckpt_time
            checkpoint_time += ckpt_time
            last_checkpoint = i

    num_checkpoints = -(-total_iterations // checkpoint_every)
    fault_free_time = (total_iterations * iter_time(1.0)
                       + num_checkpoints * ckpt_time)
    units = profile.units_per_iteration(cluster.total_gpus)
    return GoodputReport(
        total_iterations=total_iterations,
        total_time=total_time,
        fault_free_time=fault_free_time,
        downtime=downtime,
        replayed_iterations=replayed,
        checkpoint_time=checkpoint_time,
        num_failures=len(fired),
        num_degraded_iterations=degraded_iters,
        units_per_second=units * total_iterations / total_time,
        fault_free_units_per_second=(units * total_iterations
                                     / fault_free_time),
    )


def throughput(
    profile: ModelProfile,
    plan: SyncPlan,
    cluster: ClusterSpec,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> float:
    """Units (images or words) per second for *plan* on *cluster*."""
    breakdown = simulate_iteration(profile, plan, cluster, cost)
    return (profile.units_per_iteration(cluster.total_gpus)
            / breakdown.iteration_time)


# ----------------------------------------------------------------------
# Serving plane
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ServingBreakdown:
    """Priced anatomy of one served batch (forward-only replay)."""

    batch_size: int
    queue_delay: float   # expected wait while the batcher coalesces
    compute_time: float  # forward replay on the serving host
    lookup_time: float   # routed sparse lookups to shard owners
    launch_time: float   # per-batch dispatch overhead
    max_delay: float     # the batcher's max_delay_ms bound, in seconds

    @property
    def service_time(self) -> float:
        return self.compute_time + self.lookup_time + self.launch_time

    @property
    def p50_latency(self) -> float:
        """Median request latency: typical queue wait plus service."""
        return self.queue_delay + self.service_time

    @property
    def p99_latency(self) -> float:
        """Tail latency: a first-in-batch request can wait the full
        delay window before its batch launches."""
        return self.max_delay + self.service_time

    @property
    def qps(self) -> float:
        return self.batch_size / self.service_time


# Fraction of a training iteration's GPU time a forward-only replay
# costs: the backward pass runs roughly two matmuls per layer against
# the forward's one, so inference pays about a third of fwd+bwd.
SERVE_FORWARD_FRACTION = 1.0 / 3.0


def simulate_serving(
    profile: ModelProfile,
    cluster: ClusterSpec,
    batch_size: int,
    max_delay_ms: float = 2.0,
    sharded: bool = True,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> ServingBreakdown:
    """Price one served batch: the batch-size/latency tradeoff curve.

    Compute scales with the batch while the per-batch dispatch overhead
    does not, so QPS rises with batch size; the queue delay the batcher
    spends coalescing rises alongside -- the knee ``bench --serve``
    measures, priced here so capacity planning can sweep batch sizes
    without hardware.  With *sharded* embeddings on a multi-machine
    cluster, each sparse variable costs one routed lookup (the touched
    rows over the PS NIC plus an RPC) instead of replicating the full
    table into every serving process.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if max_delay_ms < 0:
        raise ValueError("max_delay_ms must be >= 0")
    scale = batch_size / profile.batch_per_gpu
    compute = SERVE_FORWARD_FRACTION * profile.gpu_time_per_iter * scale
    lookup = 0.0
    if sharded and cluster.num_machines > 1:
        for variable in profile.sparse_variables:
            # A bigger request batch touches proportionally more rows
            # (alpha is measured at the training batch), saturating at
            # the full table.
            touched = min(1.0, variable.alpha * scale)
            lookup += (touched * variable.nbytes / cost.ps_nic_bw
                       + cost.tcp_latency + cost.c_rpc_per_variable)
    max_delay = max_delay_ms / 1000.0
    # A lone request launches on its own; a coalesced batch's median
    # request waited about half the delay window.
    queue_delay = 0.0 if batch_size == 1 else max_delay / 2.0
    return ServingBreakdown(
        batch_size=int(batch_size),
        queue_delay=queue_delay,
        compute_time=compute,
        lookup_time=lookup,
        launch_time=cost.step_latency,
        max_delay=max_delay,
    )


def plan_wire_bytes(breakdown: IterationBreakdown) -> float:
    """One worker-side view of a plan's per-iteration bytes on the wire:
    the compressed collective payload plus every PS flow.  This is the
    quantity :func:`pick_plan_under_budget` holds to a budget."""
    return (breakdown.collective_wire_bytes
            + sum(breakdown.ps_flow_bytes.values()))


def pick_plan_under_budget(
    profile: ModelProfile,
    plans,
    cluster: ClusterSpec,
    budget_bytes: float,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> Optional[SyncPlan]:
    """Highest-throughput plan whose wire bytes fit *budget_bytes*.

    The compression counterpart of the partition search: candidates
    typically sweep codecs/ratios of one base plan (see
    ``SyncPlan.with_compression``), and the budget expresses a bandwidth
    cap per iteration.  Returns None when no candidate fits -- the
    caller decides whether to exceed the budget or compress harder.
    """
    if budget_bytes <= 0:
        raise ValueError("budget_bytes must be positive")
    best: Optional[SyncPlan] = None
    best_throughput = -1.0
    for plan in plans:
        breakdown = simulate_iteration(profile, plan, cluster, cost)
        if plan_wire_bytes(breakdown) > budget_bytes:
            continue
        tp = (profile.units_per_iteration(cluster.total_gpus)
              / breakdown.iteration_time)
        if tp > best_throughput:
            best, best_throughput = plan, tp
    return best


def calibrate_gpu_time(
    profile: ModelProfile,
    plan: SyncPlan,
    cluster: ClusterSpec,
    measured_iteration_time: float,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> ModelProfile:
    """Refit ``gpu_time_per_iter`` so the simulator matches a measurement.

    The autopilot's online refit: given the *measured* step time of the
    incumbent plan (from a clean telemetry window -- degraded windows
    must be excluded, see ``fit_from_telemetry``), solve for the compute
    term that makes ``simulate_iteration`` reproduce it.  The predicted
    iteration time is strictly increasing in ``gpu_time_per_iter``
    (compute is an additive term), so a bisection converges; the
    returned profile prices every *candidate* plan with calibrated
    compute plus modeled communication.

    If even zero compute predicts more than the measurement (the comm
    terms alone exceed it), the floor profile is returned -- candidate
    *ranking* stays meaningful because the compute term is shared.
    """
    if measured_iteration_time <= 0:
        raise ValueError("measured_iteration_time must be > 0")
    floor = 1e-9

    def predicted(gpu_time: float) -> float:
        probe = replace(profile, gpu_time_per_iter=gpu_time)
        return simulate_iteration(probe, plan, cluster, cost).iteration_time

    if predicted(floor) >= measured_iteration_time:
        return replace(profile, gpu_time_per_iter=floor)
    hi = max(measured_iteration_time, profile.gpu_time_per_iter, floor)
    while predicted(hi) < measured_iteration_time:
        hi *= 2.0
        if hi > 1e6:  # pathological measurement; give up gracefully
            break
    lo = floor
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if predicted(mid) < measured_iteration_time:
            lo = mid
        else:
            hi = mid
    return replace(profile, gpu_time_per_iter=0.5 * (lo + hi))
