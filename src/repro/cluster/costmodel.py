"""Calibrated cost model for the performance plane.

The paper reports wall-clock throughput on a real testbed; we reproduce
it on a simulator, so every constant below is a *substitution* for a piece
of 2018-era systems reality.  The table maps each constant to what it
stands in for; values are calibrated (see ``examples/calibrate.py`` and
EXPERIMENTS.md) so that the paper's headline ratios hold, and the shapes
of all tables/figures are reproduced.

===============================  =====================================
Constant                         Stands in for
===============================  =====================================
nccl_bw                          NCCL ring AllReduce effective per-NIC
                                 bandwidth over 100 Gb/s InfiniBand
                                 (GPUDirect, ~60-75% line rate)
intra_bw                         intra-machine GPU<->GPU over PCIe P2P
mpi_bw                           OpenMPI AllGatherv effective bandwidth
                                 (no NCCL support; TCP-over-IB path --
                                 the paper notes this fallback)
ps_nic_bw                        gRPC aggregate per-NIC throughput
worker_stream_bw                 a single worker's gRPC stream rate
dense_ps_overlap                 fraction of *compute time* under which
                                 dense PS traffic can hide (TF pipelines
                                 pulls/pushes layer-by-layer with
                                 fwd/bwd); sparse embedding traffic sits
                                 at iteration boundaries and cannot hide
c_agg_sparse                     CPU ns/element to dedup+sum one sparse
                                 gradient contribution (TF conditional
                                 accumulator take_grad path)
c_agg_dense                      vectorized dense summation ns/element
agg_threads_per_machine          server-side op-level parallelism cap
c_stitch                         per-partition cost of dynamic_stitch /
                                 per-partition op scheduling (theta_2)
c_rpc_per_variable               per-variable request/queueing overhead
                                 of one PS round (pull + push RPCs are
                                 issued per variable, poorly pipelined
                                 in TF 1.x)
c_sync_per_worker                per-worker barrier/bookkeeping cost of
                                 synchronous PS training per sparse var;
                                 local aggregation reduces it to one
                                 participant (the local chief) per
                                 machine
c_apply_gathered                 per-element cost for every replica to
                                 apply an AllGatherv'd sparse update
step_latency                     per ring-step launch latency
zipf_overlap                     cross-worker overlap of touched
                                 embedding rows (Zipf head sharing),
                                 controls local-aggregation dedup
===============================  =====================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Tunable constants of the performance simulator (seconds / bytes)."""

    # Network (bytes/sec, one-way per NIC unless stated)
    nccl_bw: float = 4.0e9
    intra_bw: float = 8.0e9
    mpi_bw: float = 11.0e9
    ps_nic_bw: float = 11.0e9
    worker_stream_bw: float = 0.8e9

    # Fraction of compute time under which dense PS traffic hides
    dense_ps_overlap: float = 0.9

    # CPU-side costs (seconds per element / per unit)
    c_agg_sparse: float = 2.4e-8
    c_agg_dense: float = 1.0e-10
    agg_threads_per_machine: int = 36  # 2x 18-core Xeon E5-2695
    c_stitch: float = 3.0e-4
    c_rpc_per_variable: float = 4.0e-3
    c_sync_per_worker: float = 4.0e-3
    c_apply_gathered: float = 5.3e-9

    # Latencies
    step_latency: float = 2.5e-5
    # Fixed cost of launching one collective (kernel launch + NCCL group
    # setup + scheduler wakeup).  Only priced under bucketed (fusion-aware)
    # AllReduce accounting -- the per-collective term tensor fusion
    # amortizes; see SyncPlan.fusion_buffer_mb.
    c_collective_launch: float = 5e-5

    # Fraction of the iteration's GPU compute (profiles report fwd+bwd
    # together as gpu_time_per_iter) under which dense AllReduce can hide
    # when collectives are scheduled per fusion bucket as each bucket's
    # last gradient becomes ready (Horovod-style overlap).  The default
    # approximates the backward share of an iteration.  Like
    # c_collective_launch, only used by bucketed AR accounting.
    ar_overlap: float = 0.5

    # Sparsity overlap across workers (0 = disjoint rows, 1 = identical)
    zipf_overlap: float = 0.9

    # ---- gradient compression (comm/compression.py) ---------------------
    # Elements/sec one worker compresses or decompresses (top-k selection
    # or fp16 pack on the GPU; the decompress side scatters/casts).  Both
    # directions are priced at this rate.
    compress_throughput: float = 2.0e9
    # Fixed cost of launching one compress/decompress kernel pair per
    # collective (mirrors c_collective_launch on the compute side).
    c_compress_launch: float = 2e-5

    # ---- host transport (multiprocess backend serialization) -----------
    # Seconds per byte to pickle a payload onto a queue-based transport
    # (the PR-4 worker path).  Default 0.0 keeps every pre-existing
    # simulator output exact; `fit_transport_constants` calibrates it
    # from the ShmTransport's measured telemetry counters.
    c_serialize: float = 0.0
    # Bytes/sec the shared-memory ring moves bulk payloads at (one copy
    # in, one copy out of /dev/shm).
    shm_bw: float = 8.0e9
    # Bytes/sec one TcpTransport connection sustains (loopback or NIC;
    # `bench --network` measures it and `fit_network_constants` writes
    # it here) and the per-message frame latency of that link.  The
    # defaults model loopback so pre-calibration predictions stay sane.
    tcp_bw: float = 3.0e9
    tcp_latency: float = 5.0e-5

    # ---- elastic runtime (recovery and rescale downtime pricing) -------
    # Bandwidth at which one machine serializes/deserializes logical state
    # for a checkpoint or restore (local NVMe-class storage).
    ckpt_bw: float = 2.0e9
    # Wall-clock to declare a worker dead (heartbeat/gRPC deadline).
    c_failure_detect: float = 2.0
    # Respawning a worker process and rebuilding its graph.
    c_worker_respawn: float = 5.0
    # Compiling one step plan for one replica (the PR-1 engine's
    # compile-once cost, paid again after every rescale).
    c_plan_compile: float = 0.05

    def __post_init__(self):
        for name in ("nccl_bw", "intra_bw", "mpi_bw", "ps_nic_bw",
                     "worker_stream_bw", "ckpt_bw", "compress_throughput",
                     "shm_bw", "tcp_bw"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in ("c_failure_detect", "c_worker_respawn",
                     "c_plan_compile", "c_compress_launch", "c_serialize",
                     "tcp_latency"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if not 0.0 <= self.dense_ps_overlap <= 1.0:
            raise ValueError("dense_ps_overlap must be in [0, 1]")
        if not 0.0 <= self.ar_overlap <= 1.0:
            raise ValueError("ar_overlap must be in [0, 1]")
        if self.c_collective_launch < 0.0:
            raise ValueError("c_collective_launch must be >= 0")
        if not 0.0 <= self.zipf_overlap <= 1.0:
            raise ValueError("zipf_overlap must be in [0, 1]")
        if self.agg_threads_per_machine < 1:
            raise ValueError("agg_threads_per_machine must be >= 1")

    def with_overrides(self, **kwargs) -> "CostModel":
        return replace(self, **kwargs)

    def degraded(self, factor: float) -> "CostModel":
        """The cost model under a NIC running at ``factor`` of line rate.

        Only inter-machine transports slow down; intra-machine PCIe
        bandwidth and every CPU-side constant are NIC-independent.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError("degradation factor must be in (0, 1]")
        return replace(
            self,
            nccl_bw=self.nccl_bw * factor,
            mpi_bw=self.mpi_bw * factor,
            ps_nic_bw=self.ps_nic_bw * factor,
            worker_stream_bw=self.worker_stream_bw * factor,
        )


def union_alpha(alpha: float, k: int, zipf_overlap: float) -> float:
    """Effective row fraction after merging k workers' sparse gradients.

    With fully independent batches the union of k samples of fraction
    ``alpha`` is ``1 - (1 - alpha)^k``; natural-language batches overlap
    far more than independence predicts because frequent (Zipf-head) words
    recur in every batch.  ``zipf_overlap`` interpolates between the
    independent union (0) and complete overlap (1):

        alpha_eff = alpha + (1 - zipf_overlap) * (union_independent - alpha)
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError("alpha must be in (0, 1]")
    if k < 1:
        raise ValueError("k must be >= 1")
    independent = 1.0 - (1.0 - alpha) ** k
    return alpha + (1.0 - zipf_overlap) * (independent - alpha)


def fit_transport_constants(samples, base: "CostModel" = None) -> "CostModel":
    """Calibrate ``c_serialize`` / ``shm_bw`` / ``tcp_bw`` from telemetry.

    *samples* is an iterable of per-step counter dicts as produced by the
    multiprocess backend's ``transport/step`` transcript notes (and
    accumulated in ``MultiprocBackend.serialization_totals``): the keys
    used are ``pickle_bytes`` / ``serialize_s`` for the pickle path,
    ``shm_bytes`` / ``deserialize_s`` + ``serialize_s`` for the ring
    path, and the bulk (non-pickle) share of ``wire_bytes`` for the TCP
    frame path.  On the TCP transport every frame counts ``wire_bytes``
    and pickle-path frames *also* count ``pickle_bytes``, so the bulk
    wire traffic is their difference.  Measurements that would produce
    degenerate constants (no bytes moved, or zero measured time) leave
    the corresponding default untouched.
    """
    base = base if base is not None else DEFAULT_COST_MODEL
    pickle_bytes = pickle_s = shm_bytes = shm_s = 0.0
    wire_bytes = wire_s = 0.0
    for counters in samples:
        pb = float(counters.get("pickle_bytes", 0))
        sb = float(counters.get("shm_bytes", 0))
        wb = max(0.0, float(counters.get("wire_bytes", 0)) - pb)
        wall = (float(counters.get("serialize_s", 0.0))
                + float(counters.get("deserialize_s", 0.0)))
        total = pb + sb + wb
        if total <= 0 or wall <= 0:
            continue
        # Wall time is attributed to the paths by bytes moved; on
        # homogeneous steps (all one path) this is exact.
        pickle_bytes += pb
        shm_bytes += sb
        wire_bytes += wb
        pickle_s += wall * (pb / total)
        shm_s += wall * (sb / total)
        wire_s += wall * (wb / total)
    overrides = {}
    if pickle_bytes > 0 and pickle_s > 0:
        overrides["c_serialize"] = pickle_s / pickle_bytes
    if shm_bytes > 0 and shm_s > 0:
        overrides["shm_bw"] = shm_bytes / shm_s
    if wire_bytes > 0 and wire_s > 0:
        overrides["tcp_bw"] = wire_bytes / wire_s
    return base.with_overrides(**overrides) if overrides else base


def fit_from_telemetry(windows, base: "CostModel" = None) -> "CostModel":
    """Online refit from autopilot telemetry windows.

    Feeds each window's accumulated transport counters through
    :func:`fit_transport_constants` -- but only windows untainted by
    fault-plane activity.  A window that overlapped a scheduled
    ``NicDegradation`` (or a rescale, or a worker kill) measured wall
    time and counters under transient conditions; folding it in would
    poison every later refit with constants that describe the fault,
    not the transport.  Windows without counters (the inproc backend
    records none) are skipped, so an all-inproc history returns *base*
    unchanged.
    """
    samples = [w.counters for w in windows
               if not w.tainted and w.counters]
    return fit_transport_constants(samples, base)


def fit_network_constants(measurement, base: "CostModel" = None,
                          ) -> "CostModel":
    """Calibrate ``tcp_bw`` / ``tcp_latency`` from a link microbench.

    *measurement* is the dict ``bench --network`` produces: the keys
    used are ``measured_bandwidth_bytes_per_s`` (large-payload transfer
    rate through one TcpTransport connection) and ``measured_latency_s``
    (small-frame round trip / 2).  Unlike :func:`fit_transport_constants`
    this calibrates the *physical link*, not serialization cost -- it is
    what turns the model's assumed link constants into measured ones.
    Non-positive measurements leave the defaults untouched.
    """
    base = base if base is not None else DEFAULT_COST_MODEL
    overrides = {}
    bw = float(measurement.get("measured_bandwidth_bytes_per_s", 0.0))
    lat = float(measurement.get("measured_latency_s", 0.0))
    if bw > 0:
        overrides["tcp_bw"] = bw
    if lat > 0:
        overrides["tcp_latency"] = lat
    return base.with_overrides(**overrides) if overrides else base


def predict_multiproc_goodput(inproc_steps_per_sec: float, num_workers: int,
                              cpu_count: int, pickle_bytes_per_step: float,
                              shm_bytes_per_step: float,
                              wire_bytes_per_step: float = 0.0,
                              cost: "CostModel" = None) -> float:
    """Predicted multiprocess steps/sec from the in-process rate.

    Replicas run concurrently up to the host's core count, so compute
    time shrinks by ``min(num_workers, cpu_count)``; the per-step
    transport bill (pickled control bytes at ``c_serialize`` sec/byte,
    ring payload bytes at ``shm_bw``, bulk socket-frame bytes at
    ``tcp_bw``) is paid on the controller's critical path and does not
    parallelize.
    """
    if inproc_steps_per_sec <= 0 or num_workers < 1:
        return 0.0
    cost = cost if cost is not None else DEFAULT_COST_MODEL
    parallelism = max(1, min(num_workers, cpu_count))
    compute_s = 1.0 / inproc_steps_per_sec / parallelism
    transport_s = (pickle_bytes_per_step * cost.c_serialize
                   + shm_bytes_per_step / cost.shm_bw
                   + wire_bytes_per_step / cost.tcp_bw)
    return 1.0 / (compute_s + transport_s)


DEFAULT_COST_MODEL = CostModel()
