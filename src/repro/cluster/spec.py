"""Cluster hardware description."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.graph.device import DeviceSpec


@dataclass(frozen=True)
class ClusterSpec:
    """Machines, GPUs, and NIC bandwidth.

    Defaults model the paper's testbed: 8 machines, 6 GPUs each,
    100 Gb/s InfiniBand (section 6.1).
    """

    num_machines: int = 8
    gpus_per_machine: int = 6
    nic_gbps: float = 100.0

    def __post_init__(self):
        if self.num_machines < 1:
            raise ValueError("need at least one machine")
        if self.gpus_per_machine < 1:
            raise ValueError("need at least one GPU per machine")
        if self.nic_gbps <= 0:
            raise ValueError("NIC bandwidth must be positive")

    @property
    def total_gpus(self) -> int:
        return self.num_machines * self.gpus_per_machine

    @property
    def nic_bytes_per_sec(self) -> float:
        return self.nic_gbps * 1e9 / 8.0

    def gpu_devices(self) -> List[DeviceSpec]:
        """All worker devices, ordered machine-major (worker index order)."""
        return [
            DeviceSpec.gpu(m, g)
            for m in range(self.num_machines)
            for g in range(self.gpus_per_machine)
        ]

    def server_devices(self) -> List[DeviceSpec]:
        """One (CPU) server device per machine, as Parallax launches them."""
        return [DeviceSpec.cpu(m) for m in range(self.num_machines)]

    def machine_of_worker(self, worker_index: int) -> int:
        if not 0 <= worker_index < self.total_gpus:
            raise ValueError(f"worker index {worker_index} out of range")
        return worker_index // self.gpus_per_machine

    def workers_on_machine(self, machine: int) -> List[int]:
        base = machine * self.gpus_per_machine
        return list(range(base, base + self.gpus_per_machine))

    def scaled(self, num_machines: int) -> "ClusterSpec":
        """Same hardware with a different machine count (scaling sweeps)."""
        return ClusterSpec(num_machines, self.gpus_per_machine, self.nic_gbps)

    def without_machine(self, machine: int) -> "ClusterSpec":
        """The cluster after evicting one machine (shrink recovery).

        Machines are homogeneous and logically renumbered after the
        eviction, so the result is simply one machine fewer; the identity
        of the failed machine only matters for validation.
        """
        if not 0 <= machine < self.num_machines:
            raise ValueError(
                f"machine {machine} out of range [0, {self.num_machines})"
            )
        if self.num_machines == 1:
            raise ValueError(
                "cannot evict the only machine; the cluster would be empty"
            )
        return self.scaled(self.num_machines - 1)


PAPER_CLUSTER = ClusterSpec(num_machines=8, gpus_per_machine=6, nic_gbps=100.0)
