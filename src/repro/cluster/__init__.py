"""Cluster substrate: hardware spec, network model, cost model, simulator.

The paper's evaluation ran on 8 machines x 6 TITAN Xp GPUs over 100 Gb/s
InfiniBand.  This package simulates that testbed: a fluid max-min
fair-share network model turns per-iteration flows into transfer times, a
calibrated cost model covers the CPU-side work (sparse gradient
aggregation, partition stitching), and the iteration simulator composes
them into per-iteration time for any synchronization plan.
"""

from repro.cluster.spec import ClusterSpec
from repro.cluster.network import Flow, simulate_flows, maxmin_rates
from repro.cluster.costmodel import CostModel, union_alpha
from repro.cluster.plan import (
    SyncMethod,
    VariableAssignment,
    SyncPlan,
)
from repro.cluster.simulator import IterationBreakdown, simulate_iteration

__all__ = [
    "ClusterSpec",
    "Flow",
    "simulate_flows",
    "maxmin_rates",
    "CostModel",
    "union_alpha",
    "SyncMethod",
    "VariableAssignment",
    "SyncPlan",
    "IterationBreakdown",
    "simulate_iteration",
]
