"""Deterministic fault-injection plane for the elastic runtime.

A :class:`FaultPlan` is a reproducible failure schedule: worker kills and
NIC degradations pinned to iteration numbers.  Both execution planes
consume it -- the functional runner raises :class:`WorkerFailureError`
when a scheduled kill fires (and notes every event into the Transcript),
while the performance simulator prices the recovery downtime and the
degraded-bandwidth windows the same schedule implies.

Living in the cluster layer keeps the dependency direction intact: the
core runtime and the simulator both import from here, never from each
other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class WorkerFailure:
    """Worker ``worker`` dies at the start of iteration ``iteration``.

    A failure fires exactly once: after recovery replays the same
    iteration number, the event is already spent.
    """

    iteration: int
    worker: int

    def __post_init__(self):
        if self.iteration < 0:
            raise ValueError("failure iteration must be >= 0")
        if self.worker < 0:
            raise ValueError("worker index must be >= 0")


@dataclass(frozen=True)
class NicDegradation:
    """Machine ``machine``'s NIC runs at ``factor`` of its bandwidth for
    ``duration`` iterations starting at ``iteration``."""

    iteration: int
    machine: int
    factor: float
    duration: int = 1

    def __post_init__(self):
        if self.iteration < 0:
            raise ValueError("degradation iteration must be >= 0")
        if self.machine < 0:
            raise ValueError("machine index must be >= 0")
        if not 0.0 < self.factor <= 1.0:
            raise ValueError("degradation factor must be in (0, 1]")
        if self.duration < 1:
            raise ValueError("degradation duration must be >= 1")

    def active_at(self, iteration: int) -> bool:
        return self.iteration <= iteration < self.iteration + self.duration


class WorkerFailureError(RuntimeError):
    """Raised when a worker fails -- a scheduled fault-plan kill, or a
    real worker process dying under the multiprocess backend.

    Real failures carry execution context so the error names exactly
    where the worker was in its schedule: ``schedule_index`` is the
    position in the rank's partitioned step schedule and ``op_name`` the
    op whose kernel (or receive) was in flight.  ``detail`` holds the
    remote traceback when one was recovered.
    """

    def __init__(self, iteration: int, worker: int, machine: int, *,
                 schedule_index: Optional[int] = None,
                 op_name: Optional[str] = None,
                 detail: Optional[str] = None):
        self.iteration = iteration
        self.worker = worker
        self.machine = machine
        self.schedule_index = schedule_index
        self.op_name = op_name
        self.detail = detail
        message = (
            f"worker {worker} (machine {machine}) failed at iteration "
            f"{iteration}"
        )
        if schedule_index is not None:
            message += f" at schedule position {schedule_index}"
        if op_name is not None:
            message += f" while executing {op_name!r}"
        if detail:
            message += f"\n{detail}"
        super().__init__(message)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of failures and NIC degradations."""

    failures: Tuple[WorkerFailure, ...] = ()
    degradations: Tuple[NicDegradation, ...] = ()

    def __post_init__(self):
        # Accept lists for convenience but store hashable tuples: the
        # runner tracks fired events by identity in a set.
        object.__setattr__(self, "failures", tuple(self.failures))
        object.__setattr__(self, "degradations", tuple(self.degradations))

    @classmethod
    def kill(cls, worker: int, at_iteration: int) -> "FaultPlan":
        """Shorthand for the single-failure schedule tests use most."""
        return cls(failures=(WorkerFailure(at_iteration, worker),))

    def failures_at(self, iteration: int) -> List[WorkerFailure]:
        return [f for f in self.failures if f.iteration == iteration]

    def degradations_at(self, iteration: int) -> List[NicDegradation]:
        return [d for d in self.degradations if d.active_at(iteration)]

    def nic_factor(self, iteration: int,
                   machine: Optional[int] = None) -> float:
        """Combined bandwidth factor active at *iteration*.

        Overlapping degradations compound multiplicatively; ``machine``
        restricts the product to one machine's events (the simulator's
        iteration pricing is cluster-wide, so it passes None and takes the
        worst case of any degraded NIC slowing the whole synchronous
        step).
        """
        factor = 1.0
        for d in self.degradations_at(iteration):
            if machine is None or d.machine == machine:
                factor *= d.factor
        return factor

    @property
    def last_scheduled_iteration(self) -> int:
        """The last iteration any event touches (-1 for an empty plan)."""
        last = -1
        for f in self.failures:
            last = max(last, f.iteration)
        for d in self.degradations:
            last = max(last, d.iteration + d.duration - 1)
        return last

    def __bool__(self) -> bool:
        return bool(self.failures or self.degradations)

    def cluster_nic_factor(self, iteration: int, num_machines: int) -> float:
        """Combined factor over the machines actually in the fleet.

        Like :meth:`nic_factor` with ``machine=None``, but degradations
        scheduled on machines outside ``range(num_machines)`` do not
        count: a fleet that rescaled away a degraded machine no longer
        pays for its NIC.  Both the functional emulation
        (:func:`emulated_degradation_delay` callers) and the autopilot's
        planner use this form so they agree on who is degraded.
        """
        factor = 1.0
        for d in self.degradations_at(iteration):
            if d.machine < num_machines:
                factor *= d.factor
        return factor


def emulated_degradation_delay(network_bytes: float, factor: float,
                               emulate_nic_bw: Optional[float]) -> float:
    """Extra seconds a degraded NIC adds to *network_bytes* of transfers.

    The functional plane's degradation emulation and the autopilot's
    candidate pricing share this one formula so predicted and measured
    step times agree: at full bandwidth the bytes take
    ``network_bytes / emulate_nic_bw`` seconds, at ``factor`` of it they
    take ``1/factor`` as long, and the *delay* is the difference --
    ``network_bytes * (1/factor - 1) / emulate_nic_bw``.
    """
    if emulate_nic_bw is None or factor >= 1.0 or network_bytes <= 0:
        return 0.0
    return network_bytes * (1.0 / factor - 1.0) / emulate_nic_bw
