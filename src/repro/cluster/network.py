"""Fluid network model with max-min fair bandwidth sharing.

Each machine has a full-duplex NIC: an egress resource and an ingress
resource, each of a given capacity in bytes/sec.  Concurrent flows share
these resources max-min fairly -- the standard fluid approximation of TCP
fair sharing.  The simulation advances from flow completion to flow
completion, recomputing rates at each event.

This model is what lets the PS hot-spot asymmetry (paper section 3.1)
*emerge* rather than being asserted: a server machine with ``w(N-1)``
bytes to egress finishes long after machines that only push ``w``,
because its NIC is the max-min bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

Resource = Tuple[str, int]  # ("out"|"in", machine)


@dataclass
class Flow:
    """A point-to-point transfer of ``nbytes`` from src to dst machine.

    ``stage`` imposes barrier ordering: all flows of stage ``s`` finish
    before stage ``s+1`` starts (ring steps, pull-then-push phases).
    Flows with ``src == dst`` are intra-machine and complete instantly.
    """

    src: int
    dst: int
    nbytes: float
    tag: str = ""
    stage: int = 0

    def resources(self) -> List[Resource]:
        return [("out", self.src), ("in", self.dst)]


def maxmin_rates(
    flows: Sequence[Flow],
    capacity: Mapping[Resource, float],
) -> List[float]:
    """Max-min fair rates for *flows* under per-resource capacities.

    Progressive filling: repeatedly find the bottleneck resource (smallest
    equal-share), freeze its flows at that rate, subtract, and continue.
    Capacities clamp at zero on entry and after every subtraction:
    explicit zero-capacity resources (a dead NIC) yield zero-rate flows,
    and float drift from repeated subtraction can never push a residual
    negative (which would hand later flows a negative share).
    """
    remaining = {r: max(0.0, float(c)) for r, c in capacity.items()}
    rates: List[Optional[float]] = [None] * len(flows)
    active = set(range(len(flows)))

    while active:
        usage: Dict[Resource, int] = {}
        for i in active:
            for r in flows[i].resources():
                usage[r] = usage.get(r, 0) + 1
        share: Dict[Resource, float] = {}
        for r, n in usage.items():
            cap = remaining.get(r)
            if cap is None:
                raise KeyError(f"no capacity defined for resource {r}")
            share[r] = cap / n
        bottleneck = min(share, key=lambda r: share[r])
        rate = share[bottleneck]
        frozen = [i for i in active if bottleneck in flows[i].resources()]
        for i in frozen:
            rates[i] = rate
            active.remove(i)
            for r in flows[i].resources():
                remaining[r] = max(0.0, remaining[r] - rate)
    return [r if r is not None else 0.0 for r in rates]


def _uniform_capacity(flows: Sequence[Flow], bandwidth: float,
                      ) -> Dict[Resource, float]:
    machines = {f.src for f in flows} | {f.dst for f in flows}
    caps: Dict[Resource, float] = {}
    for m in machines:
        caps[("out", m)] = bandwidth
        caps[("in", m)] = bandwidth
    return caps


def simulate_flows(
    flows: Sequence[Flow],
    bandwidth: float,
    per_stage_latency: float = 0.0,
    capacity: Optional[Mapping[Resource, float]] = None,
) -> float:
    """Completion time of *flows* under max-min sharing.

    Stages run as barriers in ascending order; within a stage, rates are
    recomputed at every flow completion.

    Args:
        flows: the transfer set.
        bandwidth: per-NIC one-way bandwidth (bytes/sec) when *capacity*
            is not given.
        per_stage_latency: fixed latency added once per non-empty stage
            (ring step setup, RPC round trip).
        capacity: optional explicit per-resource capacities.

    Returns:
        Total seconds until the last flow completes.
    """
    if bandwidth <= 0 and capacity is None:
        raise ValueError("bandwidth must be positive")
    network = [f for f in flows if f.src != f.dst and f.nbytes > 0]
    if not network:
        return 0.0

    stages = sorted({f.stage for f in network})
    total = 0.0
    for stage in stages:
        stage_flows = [f for f in network if f.stage == stage]
        caps = dict(capacity) if capacity is not None else _uniform_capacity(
            stage_flows, bandwidth
        )
        remaining = [float(f.nbytes) for f in stage_flows]
        active = list(range(len(stage_flows)))
        elapsed = per_stage_latency
        while active:
            sub_flows = [stage_flows[i] for i in active]
            rates = maxmin_rates(sub_flows, caps)
            # A flow only counts as progressing if it finishes in
            # finite time: rate 0, and denormal rates whose
            # ``remaining / rate`` overflows to inf, are both stalls.
            times = [
                t for t in (
                    remaining[i] / r
                    for i, r in zip(active, rates)
                    if r > 0
                )
                if t < float("inf")
            ]
            if not times:
                # Every active flow is stalled (a zero- or effectively
                # zero-capacity resource on its path): the fluid model
                # would spin forever.  Name the stalled transfers
                # instead of the bare ``min() arg is an empty
                # sequence``.
                stalled = ", ".join(
                    f"{stage_flows[i].src}->{stage_flows[i].dst}"
                    f" ({stage_flows[i].tag or 'untagged'},"
                    f" {remaining[i]:.0f}B left)"
                    for i in active
                )
                raise ValueError(
                    f"stage {stage} stalled: no active flow can "
                    f"finish in finite time -- every path crosses a "
                    f"zero-capacity resource; stalled flows: {stalled}"
                )
            # Time until the first of the active flows completes.
            dt = min(times)
            elapsed += dt
            still_active = []
            for i, r in zip(active, rates):
                remaining[i] -= r * dt
                if remaining[i] > 1e-9:
                    still_active.append(i)
            active = still_active
        total += elapsed
    return total


def flows_from_matrix(
    matrix: Mapping[Tuple[int, int], float],
    tag: str = "",
    stage: int = 0,
) -> List[Flow]:
    """Build one flow per (src, dst) pair from an aggregated byte matrix."""
    return [
        Flow(src, dst, nbytes, tag=tag, stage=stage)
        for (src, dst), nbytes in sorted(matrix.items())
        if nbytes > 0
    ]
