"""The message plane behind pluggable execution backends.

A :class:`Transport` carries every inter-process message of a distributed
step: parameter-server pushes and pulls (gradient contributions up,
variable values down), the all-to-all buffer exchange feeding fused
AllReduce and AllGatherv collectives, and the controller's command /
result traffic.  Execution backends (:mod:`repro.core.backend`) never
talk to pipes or queues directly -- they address peers by *rank* and let
the transport move the bytes.

Two implementations ship:

* :class:`InMemoryTransport` -- a thread-safe mailbox for same-process
  use (tests, the in-process backend's plumbing checks).  Messages are
  deep-frozen through pickle exactly like the real thing, so a value
  mutated after ``send`` cannot corrupt the receiver.
* :class:`MultiprocTransport` -- one :class:`multiprocessing.Queue`
  (OS pipe + feeder thread) per destination rank.  Payloads are pickled
  *eagerly* in ``send`` -- the queue's background feeder would otherwise
  serialize a live numpy buffer that an in-place update kernel may
  already have mutated.

Both record every send into a :class:`~repro.comm.transcript.Transcript`
(tag ``transport/<kind>``), the same recording plane the logical byte
accounting uses -- so the physical message flow of a run is inspectable
with the familiar filter/aggregate helpers.  The physical plane is kept
in a transport-owned transcript, separate from the runner's logical one:
paper-facing byte accounting (Table 3 closed forms) must not change when
the same graph executes on a different backend.

Ranks ``0..n-1`` are worker replicas; rank :data:`CONTROLLER` (-1) is
the driving process.
"""

from __future__ import annotations

import pickle
import threading
from collections import deque
from typing import Dict, Optional, Tuple

from repro.comm.transcript import Transcript

# The driving (parent) process' rank.
CONTROLLER = -1


class TransportError(RuntimeError):
    """A transport-level failure (closed peer, timeout, bad rank)."""


class TransportTimeout(TransportError):
    """``recv`` gave up waiting for a message."""


def _freeze(value) -> bytes:
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


class Transport:
    """Point-to-point typed messages between the ranks of one runner.

    The interface is deliberately small: ``send`` is asynchronous and
    never blocks on the receiver; ``recv`` blocks (with optional
    timeout) until the message addressed ``(src -> dst, key)`` arrives.
    Keys are small hashable tuples -- the backends use ``("v", op_name)``
    for dataflow values, ``("cmd",)``/``("res",)`` for control traffic.

    Per-rank message order is preserved; messages with different keys
    from the same sender may be consumed in any order (the receiver
    buffers non-matching arrivals).
    """

    name: str = "transport"

    def __init__(self, num_workers: int):
        if num_workers < 1:
            raise ValueError("transport needs at least one worker rank")
        self.num_workers = num_workers
        self.transcript = Transcript()

    # -- interface -------------------------------------------------------
    def send(self, src: int, dst: int, key: Tuple, value) -> None:
        """Deliver *value* to *dst*'s mailbox; returns immediately."""
        raise NotImplementedError

    def recv(self, dst: int, src: int, key: Tuple,
             timeout: Optional[float] = None):
        """Next message ``(src -> dst, key)``; blocks until it arrives."""
        raise NotImplementedError

    def close(self) -> None:
        """Release OS resources (queues, pipes); idempotent."""

    # -- shared helpers --------------------------------------------------
    def _check_rank(self, rank: int, role: str) -> None:
        if rank != CONTROLLER and not 0 <= rank < self.num_workers:
            raise TransportError(
                f"{role} rank {rank} out of range "
                f"[{CONTROLLER}, {self.num_workers})"
            )

    def _record(self, src: int, dst: int, key: Tuple, nbytes: int) -> None:
        # Rank -> synthetic "machine" for the transcript's (src, dst)
        # pair; the controller gets the slot past the last worker.
        kind = key[0] if key else "msg"
        self.transcript.record(
            tag=f"transport/{kind}",
            src_machine=self.num_workers if src == CONTROLLER else src,
            dst_machine=self.num_workers if dst == CONTROLLER else dst,
            nbytes=nbytes,
        )

    @property
    def stats(self) -> Dict[str, int]:
        """Physical message/byte totals recorded by this endpoint."""
        transfers = self.transcript.filter(network_only=False)
        return {
            "messages": len(transfers),
            "bytes": int(sum(t.nbytes for t in transfers)),
        }


class InMemoryTransport(Transport):
    """Same-process mailbox transport (threads or plain sequential use).

    Values round-trip through pickle on ``send`` so the in-memory plane
    has exactly the multiprocess plane's value semantics (no aliasing of
    mutable buffers between sender and receiver).
    """

    name = "inmem"

    def __init__(self, num_workers: int):
        super().__init__(num_workers)
        self._lock = threading.Condition()
        self._boxes: Dict[Tuple[int, int, Tuple], deque] = {}

    def send(self, src: int, dst: int, key: Tuple, value) -> None:
        self._check_rank(src, "source")
        self._check_rank(dst, "destination")
        frozen = _freeze(value)
        self._record(src, dst, key, len(frozen))
        with self._lock:
            self._boxes.setdefault((src, dst, key), deque()).append(frozen)
            self._lock.notify_all()

    def recv(self, dst: int, src: int, key: Tuple,
             timeout: Optional[float] = None):
        self._check_rank(src, "source")
        self._check_rank(dst, "destination")
        box_key = (src, dst, key)
        with self._lock:
            while True:
                box = self._boxes.get(box_key)
                if box:
                    return pickle.loads(box.popleft())
                if not self._lock.wait(timeout=timeout):
                    raise TransportTimeout(
                        f"no message {src}->{dst} {key!r} within "
                        f"{timeout}s"
                    )


class MultiprocTransport(Transport):
    """One ``multiprocessing.Queue`` per destination rank (plus one for
    the controller).

    The queue's feeder thread gives non-blocking sends (no pipe-buffer
    deadlock between two ranks exchanging large buffers), and the eager
    ``pickle.dumps`` in :meth:`send` freezes the payload before the
    feeder runs.  Each receiving endpoint demultiplexes its queue into a
    local mailbox keyed by ``(src, key)``.
    """

    name = "multiproc"

    def __init__(self, num_workers: int, context=None):
        super().__init__(num_workers)
        if context is None:
            import multiprocessing as mp

            context = mp
        # Index 0..n-1: worker inboxes; index n: controller inbox.
        self._queues = [context.Queue() for _ in range(num_workers + 1)]
        self._pending: Dict[Tuple[int, Tuple], deque] = {}
        self._closed = False

    def _inbox(self, rank: int):
        return self._queues[self.num_workers if rank == CONTROLLER else rank]

    def send(self, src: int, dst: int, key: Tuple, value) -> None:
        if self._closed:
            raise TransportError("transport is closed")
        self._check_rank(src, "source")
        self._check_rank(dst, "destination")
        frozen = _freeze(value)
        self._record(src, dst, key, len(frozen))
        self._inbox(dst).put((src, key, frozen))

    def recv(self, dst: int, src: int, key: Tuple,
             timeout: Optional[float] = None):
        import queue as queue_mod

        self._check_rank(src, "source")
        self._check_rank(dst, "destination")
        want = (src, key)
        box = self._pending.get(want)
        if box:
            return pickle.loads(box.popleft())
        inbox = self._inbox(dst)
        while True:
            try:
                got_src, got_key, frozen = inbox.get(timeout=timeout)
            except queue_mod.Empty:
                raise TransportTimeout(
                    f"no message {src}->{dst} {key!r} within {timeout}s"
                ) from None
            if (got_src, got_key) == want:
                return pickle.loads(frozen)
            self._pending.setdefault((got_src, got_key),
                                     deque()).append(frozen)

    def drain(self, dst: int) -> int:
        """Discard every buffered/queued message for *dst* (error paths)."""
        import queue as queue_mod

        dropped = sum(len(box) for box in self._pending.values())
        self._pending.clear()
        inbox = self._inbox(dst)
        while True:
            try:
                inbox.get_nowait()
                dropped += 1
            except queue_mod.Empty:
                return dropped

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for q in self._queues:
            q.close()
            # Don't block interpreter exit on unflushed feeder threads.
            q.cancel_join_thread()
