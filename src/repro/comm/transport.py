"""The message plane behind pluggable execution backends.

A :class:`Transport` carries every inter-process message of a distributed
step: parameter-server pushes and pulls (gradient contributions up,
variable values down), the all-to-all buffer exchange feeding fused
AllReduce and AllGatherv collectives, and the controller's command /
result traffic.  Execution backends (:mod:`repro.core.backend`) never
talk to pipes or queues directly -- they address peers by *rank* and let
the transport move the bytes.

Four implementations ship (see :func:`transport_registry`):

* :class:`InMemoryTransport` -- a thread-safe mailbox for same-process
  use (tests, the in-process backend's plumbing checks).  Messages are
  deep-frozen through pickle exactly like the real thing, so a value
  mutated after ``send`` cannot corrupt the receiver.
* :class:`MultiprocTransport` -- one :class:`multiprocessing.Queue`
  (OS pipe + feeder thread) per destination rank.  Payloads are pickled
  *eagerly* in ``send`` -- the queue's background feeder would otherwise
  serialize a live numpy buffer that an in-place update kernel may
  already have mutated.
* :class:`ShmTransport` -- bulk arrays ride shared-memory rings, only
  headers travel through the queues.
* :class:`~repro.comm.tcp.TcpTransport` -- length-prefixed frames over
  sockets, the cross-host plane (``repro.cli launch`` bootstraps it via
  a ``tcp://host:port`` rendezvous).

:class:`SimulatedLatencyTransport` wraps any of them with a
deterministic, seeded per-message delay schedule -- wall-clock changes,
values and ordering do not, so the differential/bit-identity suites
stay exact under injected latency.

Timeout contract (shared by every implementation): ``recv(timeout=T)``
computes one ``time.monotonic()`` deadline on entry and waits only on
the *remainder* after every wakeup -- unrelated arrivals (other keys,
other senders) never restart the clock, so a recv gives up within ``T``
of the call no matter how much background traffic the endpoint sees.

Both record every send into a :class:`~repro.comm.transcript.Transcript`
(tag ``transport/<kind>``), the same recording plane the logical byte
accounting uses -- so the physical message flow of a run is inspectable
with the familiar filter/aggregate helpers.  The physical plane is kept
in a transport-owned transcript, separate from the runner's logical one:
paper-facing byte accounting (Table 3 closed forms) must not change when
the same graph executes on a different backend.

Ranks ``0..n-1`` are worker replicas; rank :data:`CONTROLLER` (-1) is
the driving process.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from collections import deque
from typing import Dict, Optional, Tuple

from repro.comm.transcript import Transcript

# The driving (parent) process' rank.
CONTROLLER = -1


class TransportError(RuntimeError):
    """A transport-level failure (closed peer, timeout, bad rank)."""


class TransportTimeout(TransportError):
    """``recv`` gave up waiting for a message."""


def _freeze(value) -> bytes:
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


# Serialization-cost counters every transport endpoint tracks.
# ``pickle_bytes``/``shm_bytes``/``wire_bytes`` split payload bytes by
# path (pickle, shared-memory ring, raw socket frame), ``copy_count``
# counts bulk memcpys (one per shm side per message), and the ``*_s``
# entries are serialize/deserialize wall time.
_COUNTER_ZERO = {
    "pickle_bytes": 0,
    "pickle_msgs": 0,
    "shm_bytes": 0,
    "shm_msgs": 0,
    "wire_bytes": 0,
    "wire_msgs": 0,
    "copy_count": 0,
    "fallbacks": 0,
    "serialize_s": 0.0,
    "deserialize_s": 0.0,
}


def counter_delta(now: Dict[str, float],
                  before: Dict[str, float]) -> Dict[str, float]:
    """``now - before`` per key (counters are monotonic accumulators)."""
    return {k: now.get(k, 0) - before.get(k, 0) for k in _COUNTER_ZERO}


def wire_parts(value):
    """``(kind, arrays, extra)`` for bulk-eligible values, else None.

    The eligibility rule shared by every bulk payload path (shm rings,
    raw TCP frames): plain native-dtype ``ndarray`` payloads move as one
    buffer (kind ``"a"``), :class:`~repro.tensor.sparse.IndexedSlices`
    as a values/indices pair plus its dense shape (kind ``"s"``);
    everything else (commands, results, state dicts, scalars) takes the
    transport's pickle path.
    """
    import numpy as np

    from repro.tensor.sparse import IndexedSlices

    if type(value) is np.ndarray:
        if value.dtype.hasobject or not value.dtype.isnative:
            return None
        return "a", [value], None
    if isinstance(value, IndexedSlices):
        vals, idx = value.values, value.indices
        if (type(vals) is not np.ndarray or type(idx) is not np.ndarray
                or vals.dtype.hasobject or not vals.dtype.isnative
                or idx.dtype.hasobject or not idx.dtype.isnative):
            return None
        return "s", [vals, idx], value.dense_shape
    return None


def _remaining(deadline: Optional[float]) -> Optional[float]:
    """Seconds left until *deadline* (None = wait forever)."""
    if deadline is None:
        return None
    return deadline - time.monotonic()


def merge_counters(total: Dict[str, float],
                   delta: Dict[str, float]) -> Dict[str, float]:
    for k in _COUNTER_ZERO:
        total[k] = total.get(k, 0) + delta.get(k, 0)
    return total


class Transport:
    """Point-to-point typed messages between the ranks of one runner.

    The interface is deliberately small: ``send`` is asynchronous and
    never blocks on the receiver; ``recv`` blocks (with optional
    timeout) until the message addressed ``(src -> dst, key)`` arrives.
    Keys are small hashable tuples -- the backends use ``("v", op_name)``
    for dataflow values, ``("cmd",)``/``("res",)`` for control traffic.

    Per-rank message order is preserved; messages with different keys
    from the same sender may be consumed in any order (the receiver
    buffers non-matching arrivals).
    """

    name: str = "transport"

    def __init__(self, num_workers: int):
        if num_workers < 1:
            raise ValueError("transport needs at least one worker rank")
        self.num_workers = num_workers
        self.transcript = Transcript()
        # Per-endpoint serialization cost counters.  After a fork each
        # process accumulates its own copy; the multiprocess backend
        # ships worker deltas back with every step result so the
        # controller can price where the bytes of a step actually went.
        self.counters: Dict[str, float] = dict(_COUNTER_ZERO)

    # -- interface -------------------------------------------------------
    def send(self, src: int, dst: int, key: Tuple, value) -> None:
        """Deliver *value* to *dst*'s mailbox; returns immediately."""
        raise NotImplementedError

    def recv(self, dst: int, src: int, key: Tuple,
             timeout: Optional[float] = None):
        """Next message ``(src -> dst, key)``; blocks until it arrives."""
        raise NotImplementedError

    def close(self) -> None:
        """Release OS resources (queues, pipes); idempotent."""

    # -- shared helpers --------------------------------------------------
    def _check_rank(self, rank: int, role: str) -> None:
        if rank != CONTROLLER and not 0 <= rank < self.num_workers:
            raise TransportError(
                f"{role} rank {rank} out of range "
                f"[{CONTROLLER}, {self.num_workers})"
            )

    def _record(self, src: int, dst: int, key: Tuple, nbytes: int) -> None:
        # Rank -> synthetic "machine" for the transcript's (src, dst)
        # pair; the controller gets the slot past the last worker.
        kind = key[0] if key else "msg"
        self.transcript.record(
            tag=f"transport/{kind}",
            src_machine=self.num_workers if src == CONTROLLER else src,
            dst_machine=self.num_workers if dst == CONTROLLER else dst,
            nbytes=nbytes,
        )

    @property
    def stats(self) -> Dict[str, int]:
        """Physical message/byte totals recorded by this endpoint."""
        transfers = self.transcript.filter(network_only=False)
        return {
            "messages": len(transfers),
            "bytes": int(sum(t.nbytes for t in transfers)),
        }


class InMemoryTransport(Transport):
    """Same-process mailbox transport (threads or plain sequential use).

    Values round-trip through pickle on ``send`` so the in-memory plane
    has exactly the multiprocess plane's value semantics (no aliasing of
    mutable buffers between sender and receiver).
    """

    name = "inmem"

    def __init__(self, num_workers: int):
        super().__init__(num_workers)
        self._lock = threading.Condition()
        self._boxes: Dict[Tuple[int, int, Tuple], deque] = {}
        self._closed = False

    def send(self, src: int, dst: int, key: Tuple, value) -> None:
        if self._closed:
            raise TransportError("transport is closed")
        self._check_rank(src, "source")
        self._check_rank(dst, "destination")
        frozen = _freeze(value)
        self._record(src, dst, key, len(frozen))
        with self._lock:
            self._boxes.setdefault((src, dst, key), deque()).append(frozen)
            self._lock.notify_all()

    def recv(self, dst: int, src: int, key: Tuple,
             timeout: Optional[float] = None):
        self._check_rank(src, "source")
        self._check_rank(dst, "destination")
        box_key = (src, dst, key)
        # One deadline for the whole call: every notify_all (any arrival
        # on any channel) wakes this waiter, so waiting the full timeout
        # again after each wakeup would never expire under steady
        # unrelated traffic.  Wait only on the remainder.
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._lock:
            while True:
                box = self._boxes.get(box_key)
                if box:
                    return pickle.loads(box.popleft())
                remaining = _remaining(deadline)
                if remaining is not None and remaining <= 0:
                    raise TransportTimeout(
                        f"no message {src}->{dst} {key!r} within "
                        f"{timeout}s"
                    )
                self._lock.wait(timeout=remaining)

    def drain(self, dst: int) -> int:
        """Discard every buffered message addressed to *dst*."""
        with self._lock:
            mine = [k for k in self._boxes if k[1] == dst]
            dropped = sum(len(self._boxes[k]) for k in mine)
            for k in mine:
                del self._boxes[k]
        return dropped

    def close(self) -> None:
        self._closed = True


class MultiprocTransport(Transport):
    """One ``multiprocessing.Queue`` per destination rank (plus one for
    the controller).

    The queue's feeder thread gives non-blocking sends (no pipe-buffer
    deadlock between two ranks exchanging large buffers), and the eager
    ``pickle.dumps`` in :meth:`send` freezes the payload before the
    feeder runs.  Each receiving endpoint demultiplexes its queue into a
    local mailbox keyed by ``(src, key)``.
    """

    name = "multiproc"

    def __init__(self, num_workers: int, context=None):
        super().__init__(num_workers)
        if context is None:
            import multiprocessing as mp

            context = mp
        # Index 0..n-1: worker inboxes; index n: controller inbox.
        self._queues = [context.Queue() for _ in range(num_workers + 1)]
        self._pending: Dict[Tuple[int, Tuple], deque] = {}
        self._closed = False

    def _inbox(self, rank: int):
        return self._queues[self.num_workers if rank == CONTROLLER else rank]

    def send(self, src: int, dst: int, key: Tuple, value) -> None:
        if self._closed:
            raise TransportError("transport is closed")
        self._check_rank(src, "source")
        self._check_rank(dst, "destination")
        t0 = time.perf_counter()
        frozen = _freeze(value)
        c = self.counters
        c["serialize_s"] += time.perf_counter() - t0
        c["pickle_bytes"] += len(frozen)
        c["pickle_msgs"] += 1
        self._record(src, dst, key, len(frozen))
        self._inbox(dst).put((src, key, frozen))

    def _thaw(self, frozen: bytes):
        t0 = time.perf_counter()
        value = pickle.loads(frozen)
        self.counters["deserialize_s"] += time.perf_counter() - t0
        return value

    def recv(self, dst: int, src: int, key: Tuple,
             timeout: Optional[float] = None):
        import queue as queue_mod

        self._check_rank(src, "source")
        self._check_rank(dst, "destination")
        want = (src, key)
        box = self._pending.get(want)
        if box:
            return self._thaw(box.popleft())
        inbox = self._inbox(dst)
        # One deadline for the whole call: buffering a non-matching
        # arrival must not restart the clock, so each queue wait gets
        # only the remaining slice of the original timeout.
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while True:
            remaining = _remaining(deadline)
            if remaining is not None and remaining <= 0:
                raise TransportTimeout(
                    f"no message {src}->{dst} {key!r} within {timeout}s"
                )
            try:
                got_src, got_key, frozen = inbox.get(timeout=remaining)
            except queue_mod.Empty:
                raise TransportTimeout(
                    f"no message {src}->{dst} {key!r} within {timeout}s"
                ) from None
            if (got_src, got_key) == want:
                return self._thaw(frozen)
            self._pending.setdefault((got_src, got_key),
                                     deque()).append(frozen)

    def drain(self, dst: int) -> int:
        """Discard every buffered/queued message for *dst* (error paths)."""
        import queue as queue_mod

        dropped = sum(len(box) for box in self._pending.values())
        self._pending.clear()
        inbox = self._inbox(dst)
        while True:
            try:
                inbox.get_nowait()
                dropped += 1
            except queue_mod.Empty:
                return dropped

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for q in self._queues:
            q.close()
            # Don't block interpreter exit on unflushed feeder threads.
            q.cancel_join_thread()


class ShmTransport(MultiprocTransport):
    """Zero-copy transport: bulk arrays ride shared-memory rings.

    One SPSC :class:`~repro.comm.shm.ShmRing` per directed rank pair,
    all created by the controller *before* the workers fork (so every
    process inherits the mappings).  ``send`` copies an eligible payload
    into the ring once -- that copy is the freeze-at-send semantics the
    queue transport got from eager pickling -- and ships only a small
    header tuple through the queue.  ``recv`` copies the payload out the
    moment the header is dequeued (release order therefore equals write
    order, the ring's one protocol requirement) and buffers the decoded
    value if it was not the message being waited for.

    Fallback to the parent's pickle path, keeping the fleet
    deadlock-free and fully general, happens when the payload is

    * not a plain ``ndarray`` / ``IndexedSlices`` (commands, results,
      state dicts, scalars),
    * an object/non-native dtype,
    * smaller than ``min_shm_bytes`` (header overhead would dominate),
    * larger than half the ring, or the ring is momentarily full.

    Byte accounting stays deterministic: shm messages record the exact
    payload ``nbytes`` (dtype x shape), pickle messages the frozen
    length, so the transcript plane is a pure function of the traffic.
    """

    name = "shm"

    #: Payloads below this many bytes take the pickle path.
    DEFAULT_MIN_SHM_BYTES = 1024
    #: Default per-ring capacity.
    DEFAULT_RING_BYTES = 1 << 22

    def __init__(self, num_workers: int, context=None,
                 ring_bytes: int = DEFAULT_RING_BYTES,
                 min_shm_bytes: int = DEFAULT_MIN_SHM_BYTES):
        super().__init__(num_workers, context=context)
        from repro.comm.shm import ShmRing

        if context is None:
            import multiprocessing as mp

            context = mp
        self.min_shm_bytes = int(min_shm_bytes)
        self._creator_pid = os.getpid()
        self._rings: Dict[Tuple[int, int], ShmRing] = {}
        ranks = [CONTROLLER] + list(range(num_workers))
        for a in ranks:
            for b in ranks:
                if a != b:
                    self._rings[(a, b)] = ShmRing(ring_bytes,
                                                  lock=context.Lock())

    # -- encode / decode -------------------------------------------------
    def _shm_parts(self, value):
        """``(kind, arrays, extra)`` for shm-eligible values, else None."""
        return wire_parts(value)

    def send(self, src: int, dst: int, key: Tuple, value) -> None:
        if self._closed:
            raise TransportError("transport is closed")
        self._check_rank(src, "source")
        self._check_rank(dst, "destination")
        parts = self._shm_parts(value)
        if parts is not None:
            kind, arrays, extra = parts
            nbytes = sum(int(a.nbytes) for a in arrays)
            if nbytes >= self.min_shm_bytes:
                t0 = time.perf_counter()
                written = self._rings[(src, dst)].try_write(arrays)
                if written is not None:
                    pos, advance, seq, offs = written
                    c = self.counters
                    c["serialize_s"] += time.perf_counter() - t0
                    c["shm_bytes"] += nbytes
                    c["shm_msgs"] += 1
                    c["copy_count"] += 1
                    self._record(src, dst, key, nbytes)
                    header = ("shm", pos, advance, seq, kind, extra,
                              tuple((a.dtype.str, a.shape, off)
                                    for a, off in zip(arrays, offs)))
                    self._inbox(dst).put((src, key, header))
                    return
                self.counters["fallbacks"] += 1
        super().send(src, dst, key, value)

    def _decode(self, src: int, dst: int, payload):
        """Materialize one queue arrival (header tuple or pickled bytes).

        Shm messages must be decoded immediately on dequeue -- the copy
        out frees the ring slot in arrival order.
        """
        if isinstance(payload, (bytes, bytearray)):
            return self._thaw(payload)
        from repro.tensor.sparse import IndexedSlices

        _, pos, advance, seq, kind, extra, metas = payload
        ring = self._rings[(src, dst)]
        t0 = time.perf_counter()
        try:
            arrays = ring.read(pos, seq, metas)
        finally:
            ring.release(advance)
        c = self.counters
        c["deserialize_s"] += time.perf_counter() - t0
        c["copy_count"] += 1
        if kind == "a":
            return arrays[0]
        values, indices = arrays
        return IndexedSlices._wrap(values, indices, tuple(extra))

    def recv(self, dst: int, src: int, key: Tuple,
             timeout: Optional[float] = None):
        import queue as queue_mod

        self._check_rank(src, "source")
        self._check_rank(dst, "destination")
        want = (src, key)
        box = self._pending.get(want)
        if box:
            return box.popleft()  # already decoded at dequeue time
        inbox = self._inbox(dst)
        # Same deadline semantics as the queue transport: buffered
        # non-matching arrivals consume the timeout, never restart it.
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while True:
            remaining = _remaining(deadline)
            if remaining is not None and remaining <= 0:
                raise TransportTimeout(
                    f"no message {src}->{dst} {key!r} within {timeout}s"
                )
            try:
                got_src, got_key, payload = inbox.get(timeout=remaining)
            except queue_mod.Empty:
                raise TransportTimeout(
                    f"no message {src}->{dst} {key!r} within {timeout}s"
                ) from None
            value = self._decode(got_src, dst, payload)
            if (got_src, got_key) == want:
                return value
            self._pending.setdefault((got_src, got_key),
                                     deque()).append(value)

    def drain(self, dst: int) -> int:
        import queue as queue_mod

        dropped = sum(len(box) for box in self._pending.values())
        self._pending.clear()
        inbox = self._inbox(dst)
        while True:
            try:
                got_src, _got_key, payload = inbox.get_nowait()
            except queue_mod.Empty:
                return dropped
            if isinstance(payload, tuple) and payload and payload[0] == "shm":
                # Keep ring accounting sane even for discarded messages.
                self._rings[(got_src, dst)].release(payload[2])
            dropped += 1

    def close(self) -> None:
        if self._closed:
            return
        super().close()
        for ring in self._rings.values():
            ring.destroy()

    @property
    def segment_names(self) -> Tuple[str, ...]:
        """The /dev/shm segment names this transport owns (hygiene tests)."""
        return tuple(sorted(r.name for r in self._rings.values()))


class SimulatedLatencyTransport:
    """Deterministic per-message delay wrapper around any transport.

    ``send`` sleeps a delay drawn from a seeded schedule -- a pure
    function of ``(seed, src, dst, per-channel message index)`` -- then
    delegates to the wrapped transport.  Per-channel FIFO order is
    preserved (the delay happens before enqueue, in send order), values
    are untouched, and every other attribute (``recv``, ``counters``,
    ``transcript``, ``close``, ...) proxies straight through.  Wall
    clock changes; bits do not -- which is what lets the differential
    and bit-identity suites run under injected latency and stay exact.
    """

    name = "simlat"

    def __init__(self, inner: Transport, delay_s: float = 1e-3,
                 jitter_s: float = 0.0, seed: int = 0):
        if delay_s < 0 or jitter_s < 0:
            raise ValueError("latency delays must be >= 0")
        self.inner = inner
        self.delay_s = float(delay_s)
        self.jitter_s = float(jitter_s)
        self.seed = int(seed)
        self._counts: Dict[Tuple[int, int], int] = {}

    def delay_for(self, src: int, dst: int, index: int) -> float:
        """The schedule: delay of channel ``src->dst``'s *index*-th send.

        Pure and replayable -- two wrappers with the same seed produce
        identical schedules, which is what makes latency-injected runs
        reproducible.
        """
        if self.jitter_s <= 0:
            return self.delay_s
        import random

        r = random.Random(f"{self.seed}:{src}:{dst}:{index}").random()
        return self.delay_s + r * self.jitter_s

    def send(self, src: int, dst: int, key: Tuple, value) -> None:
        index = self._counts.get((src, dst), 0)
        self._counts[(src, dst)] = index + 1
        delay = self.delay_for(src, dst, index)
        if delay > 0:
            time.sleep(delay)
        self.inner.send(src, dst, key, value)

    def __getattr__(self, name):
        return getattr(self.inner, name)


def transport_registry() -> Dict[str, type]:
    """Every registered transport kind, name -> class.

    ``tcp`` is imported lazily: :mod:`repro.comm.tcp` imports this
    module, so eager registration would be a cycle.
    """
    from repro.comm.tcp import TcpTransport

    return {
        InMemoryTransport.name: InMemoryTransport,
        MultiprocTransport.name: MultiprocTransport,
        ShmTransport.name: ShmTransport,
        TcpTransport.name: TcpTransport,
    }


def make_transport(kind: str, num_workers: int, **kwargs) -> Transport:
    """Construct a registered transport by name."""
    registry = transport_registry()
    try:
        cls = registry[kind]
    except KeyError:
        raise ValueError(
            f"unknown transport {kind!r}; expected one of "
            f"{sorted(registry)}"
        ) from None
    return cls(num_workers, **kwargs)
