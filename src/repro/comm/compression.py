"""Gradient compression: trade exactness for bytes on the wire.

The paper's communication plane ships every gradient byte at full
precision and full density.  This module adds the standard next lever --
compressing gradients before the collective moves them:

* :class:`TopKCompressor` -- per-tensor top-k selection by magnitude.
  Dropped coordinates are not lost: the caller carries a *residual*
  error-feedback accumulator (a per-replica variable in the transformed
  graph) that re-injects unsent mass into the next iteration's gradient,
  the classic EF-SGD construction (Stich et al.; Deep Gradient
  Compression).  The invariant tests rely on is exact by construction:
  ``decompress(payload) + new_residual == gradient + old_residual``.
* :class:`FP16Compressor` -- round-trip half-precision quantization.
  Stateless; the decompressed value is bit-exact whenever the input was
  representable in fp16.

Compressors compose: ``"topk+fp16"`` selects top-k coordinates and ships
their values in half precision (error feedback then also absorbs the
quantization error).  Compressed contributions cannot ride the ring
AllReduce (a sum of top-k sets is not top-k), so compressed collectives
exchange every replica's payload ring-allgather style -- each payload of
``p`` bytes crosses ``N-1`` links -- and every replica decompresses and
reduces the payloads in replica order, which keeps results bit-identical
across replicas and across execution backends.

The wire-size arithmetic (:func:`wire_fraction`, :func:`wire_bytes`)
is shared with the performance plane: the graph transform sizes fusion
buckets by compressed segment bytes, and the cost model prices plans by
the same fractions.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

from repro.tensor.sparse import IndexedSlices

# Payload indices ship as int32 (gradient tensors here are far below 2^31
# elements); the uncompressed planes ship int64, so this is part of the
# compression win for sparse payloads.
INDEX_ITEMSIZE = 4

# Name suffix of error-feedback residual variables in transformed graphs.
# Residuals are genuinely per-replica state (each replica compresses its
# own gradient), so their checkpoint contract differs from replicated
# variables: the logical value is the SUM across replicas (total unsent
# gradient mass), and a load assigns that sum to replica 0 and zeros to
# the rest -- mass-preserving across backend changes and rescales.
EF_RESIDUAL_SUFFIX = "/ef_residual"

_KNOWN_CODECS = ("topk", "fp16")


def is_residual_name(name: str) -> bool:
    """Whether *name* (base or replica-prefixed) is an EF residual."""
    return name.endswith(EF_RESIDUAL_SUFFIX)


def parse_spec(spec: str) -> Tuple[str, ...]:
    """Validate and normalize a compression spec like ``"topk+fp16"``."""
    parts = tuple(part.strip() for part in str(spec).split("+"))
    if (not parts or any(p not in _KNOWN_CODECS for p in parts)
            or len(set(parts)) != len(parts)):
        raise ValueError(
            f"unknown compression spec {spec!r}; expected a '+'-combination "
            f"of {_KNOWN_CODECS}"
        )
    # Canonical order: selection first, then quantization.
    return tuple(c for c in _KNOWN_CODECS if c in parts)


def spec_uses_error_feedback(spec: Optional[str]) -> bool:
    """Top-k sparsification drops mass and therefore carries a residual."""
    return spec is not None and "topk" in parse_spec(spec)


def wire_fraction(spec: str, ratio: float, itemsize: int = 4) -> float:
    """Wire bytes per raw payload byte for one compressed contribution.

    Top-k keeps ``ratio`` of the elements and ships an int32 index per
    kept element; fp16 halves the value bytes.  Shared by the graph
    transform (fusion-bucket sizing) and the cost model (plan pricing) so
    both planes agree on compressed sizes by construction.
    """
    codecs = parse_spec(spec)
    value_itemsize = 2 if "fp16" in codecs else itemsize
    if "topk" in codecs:
        return ratio * (value_itemsize + INDEX_ITEMSIZE) / itemsize
    return value_itemsize / itemsize


def wire_bytes(spec: Optional[str], ratio: float, raw_nbytes: float,
               itemsize: int = 4) -> float:
    """Estimated on-wire bytes for a payload of *raw_nbytes*."""
    if spec is None:
        return float(raw_nbytes)
    return float(raw_nbytes) * wire_fraction(spec, ratio, itemsize)


@dataclass(frozen=True)
class CompressedGrad:
    """One replica's compressed gradient contribution (the wire format).

    ``kind`` selects the decode rule:
      * ``"dense"`` -- *values* is the full (possibly fp16) array;
      * ``"flat"``  -- top-k over the flattened tensor: *values* holds
        the kept elements, *indices* their int32 flat positions;
      * ``"rows"``  -- a row subset of a sparse gradient: *values* holds
        kept rows, *indices* their int32 row ids in ``shape[0]``.
    """

    kind: str
    shape: Tuple[int, ...]
    values: np.ndarray
    indices: Optional[np.ndarray] = None

    @property
    def nbytes(self) -> int:
        """Bytes this payload occupies on the wire."""
        total = int(self.values.nbytes)
        if self.indices is not None:
            total += int(self.indices.nbytes)
        return total

    @property
    def raw_nbytes(self) -> int:
        """Bytes the uncompressed (fp32) payload would have shipped."""
        if self.kind == "rows":
            # The uncompressed AllGatherv baseline ships the touched rows
            # only; raw size of a row payload is not meaningful here.
            raise ValueError("raw_nbytes is undefined for row payloads")
        n = 1
        for dim in self.shape:
            n *= dim
        return n * 4


def decompress(payload: CompressedGrad):
    """Decode a payload: dense array for dense/flat kinds, IndexedSlices
    for row payloads.  Always returns float32 values."""
    if payload.kind == "dense":
        return payload.values.astype(np.float32)
    if payload.kind == "flat":
        out = np.zeros(int(np.prod(payload.shape)), dtype=np.float32)
        out[payload.indices] = payload.values.astype(np.float32)
        return out.reshape(payload.shape)
    if payload.kind == "rows":
        return IndexedSlices._wrap(
            payload.values.astype(np.float32),
            payload.indices.astype(np.int64),
            payload.shape,
        )
    raise ValueError(f"unknown payload kind {payload.kind!r}")


def _topk_stable(magnitudes: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k largest magnitudes, ascending; ties break toward
    the lower index, so selection is fully deterministic across backends
    and platforms.

    Runs in O(n) on the training hot path: a partition finds the k-th
    largest magnitude, everything strictly above it is kept, and ties at
    the threshold fill the remainder in ascending-index order -- the
    exact selection a stable sort on descending magnitude would make,
    without sorting the 1/ratio-times-larger rest.
    """
    n = magnitudes.size
    if k <= 0:
        return np.empty(0, dtype=np.int32)
    if k >= n:
        return np.arange(n, dtype=np.int32)
    threshold = np.partition(magnitudes, n - k)[n - k]
    above = np.nonzero(magnitudes > threshold)[0]
    ties = np.nonzero(magnitudes == threshold)[0][:k - above.size]
    return np.sort(np.concatenate([above, ties])).astype(np.int32)


class Compressor:
    """Stateless encode/decode of one gradient contribution.

    Error-feedback state (the residual) lives *outside* the compressor,
    in per-replica graph variables owned by the ``grad_compress`` kernel
    -- which is what lets it pickle to worker processes and migrate
    through the elastic checkpoint path like any other variable.
    """

    spec: str = "identity"
    uses_error_feedback: bool = False

    def encode_flat(self, array: np.ndarray) -> CompressedGrad:
        """Compress a dense tensor (any shape)."""
        raise NotImplementedError

    def encode_rows(self, dense: np.ndarray,
                    touched: Optional[np.ndarray] = None) -> CompressedGrad:
        """Compress a sparse gradient given its dense accumulator.

        *touched* optionally restricts candidate rows (the rows the
        current contribution actually carries, for stateless codecs).
        """
        raise NotImplementedError


class TopKCompressor(Compressor):
    """Keep the ``ratio`` fraction of largest-magnitude coordinates.

    Dense tensors select over flattened elements; sparse gradients select
    whole rows of the error-feedback accumulator by L2 norm (row
    granularity keeps the payload an IndexedSlices the sparse update
    kernels already consume).  ``fp16=True`` additionally ships kept
    values in half precision.
    """

    uses_error_feedback = True

    def __init__(self, ratio: float, fp16: bool = False):
        if not 0.0 < ratio <= 1.0:
            raise ValueError("compression_ratio must be in (0, 1]")
        self.ratio = float(ratio)
        self.fp16 = bool(fp16)
        self.spec = "topk+fp16" if fp16 else "topk"

    def _cast(self, values: np.ndarray) -> np.ndarray:
        return values.astype(np.float16) if self.fp16 else values

    def keep_count(self, n: int) -> int:
        return max(1, int(round(self.ratio * n))) if n else 0

    def encode_flat(self, array: np.ndarray) -> CompressedGrad:
        arr = np.asarray(array)
        flat = arr.reshape(-1)
        idx = _topk_stable(np.abs(flat), self.keep_count(flat.size))
        return CompressedGrad("flat", tuple(arr.shape),
                              self._cast(flat[idx]), idx)

    def encode_rows(self, dense: np.ndarray,
                    touched: Optional[np.ndarray] = None) -> CompressedGrad:
        norms = np.sqrt((dense.reshape(dense.shape[0], -1) ** 2).sum(axis=1))
        nonzero = int(np.count_nonzero(norms))
        k = min(nonzero, max(1, int(np.ceil(self.ratio * nonzero)))) \
            if nonzero else 0
        idx = _topk_stable(norms, k)
        return CompressedGrad("rows", tuple(dense.shape),
                              self._cast(dense[idx]), idx)


class FP16Compressor(Compressor):
    """Round-trip fp16 quantization: half the value bytes, no residual.

    The decompressed value is bit-exact whenever the input is fp16-
    representable, which is the contract the bench asserts.
    """

    spec = "fp16"
    uses_error_feedback = False

    def encode_flat(self, array: np.ndarray) -> CompressedGrad:
        arr = np.asarray(array)
        return CompressedGrad("dense", tuple(arr.shape),
                              arr.astype(np.float16))

    def encode_rows(self, dense: np.ndarray,
                    touched: Optional[np.ndarray] = None) -> CompressedGrad:
        if touched is None:
            touched = np.nonzero(
                np.abs(dense.reshape(dense.shape[0], -1)).sum(axis=1))[0]
        idx = np.asarray(touched, dtype=np.int32)
        return CompressedGrad("rows", tuple(dense.shape),
                              dense[idx].astype(np.float16), idx)


@lru_cache(maxsize=64)
def make_compressor(spec: str, ratio: float = 0.1) -> Compressor:
    """Build (and cache -- compressors are stateless) a compressor."""
    codecs = parse_spec(spec)
    if "topk" in codecs:
        return TopKCompressor(ratio, fp16="fp16" in codecs)
    return FP16Compressor()


def exchange_payloads(payloads, machines, transcript, tag: str) -> None:
    """Byte-account the all-to-all exchange of compressed payloads.

    Compressed contributions travel ring-allgather style (the same
    schedule :func:`~repro.comm.allgatherv.ring_allgatherv` walks): at
    step ``s`` worker ``i`` forwards the payload originated by worker
    ``(i - s) mod N`` to its successor, so each payload crosses ``N-1``
    links.  Only the accounting happens here -- the reduction itself is
    a deterministic decompress-and-sum every replica performs locally.
    """
    n = len(payloads)
    if transcript is None or n <= 1:
        return
    for step in range(n - 1):
        for i in range(n):
            origin = (i - step) % n
            transcript.record(tag, machines[i], machines[(i + 1) % n],
                              payloads[origin].nbytes, stage=step)
