"""Shared-memory ring buffers: the zero-copy payload plane.

The multiprocess transport of PR 4 moves every tensor through
``pickle.dumps`` -> pipe -> ``pickle.loads``: three full copies of every
byte (serialize, kernel pipe write/read, deserialize) plus the pickle
framing CPU.  This module provides the storage half of the fix: a
single-producer / single-consumer byte ring over one
``multiprocessing.shared_memory`` segment per directed rank pair.  The
producer copies an ndarray into the ring **once** at ``send`` (that copy
*is* the freeze-at-send semantics the queue transport got from eager
pickling) and publishes only a tiny header through the existing queue;
the consumer views the ring and copies out once at ``recv``.

Correctness notes:

* Rings are created by the controller *before* it forks workers, so
  every process inherits the same mapping -- there is no attach path and
  no name lookup on the hot path.
* The head/tail cursors live in the segment itself.  Python cannot
  update an 8-byte counter atomically through a memoryview, so a torn
  read could make the producer overestimate free space and overwrite
  live data; a per-ring ``multiprocessing.Lock`` therefore guards every
  cursor access.  The lock covers ~16 bytes of bookkeeping, never the
  bulk copy.
* Every message carries a generation (sequence) prefix written by the
  producer and validated by the consumer, so a protocol bug that
  overwrites an unconsumed slot fails loudly and deterministically
  instead of silently corrupting tensors.
* ``try_reserve`` failing (ring full, payload oversized) is not an
  error: the transport falls back to the pickle path, which keeps the
  system deadlock-free by construction -- a full ring can always drain
  because its consumer never blocks on this producer.
* Only the creating process ever ``unlink``s (guarded by pid), so a
  fork-inherited copy being garbage collected in a worker cannot tear
  the segment out from under the fleet.
"""

from __future__ import annotations

import os
import secrets
import struct
from typing import List, Optional, Sequence, Tuple

import numpy as np

# /dev/shm segment name prefix; the CI leak check and the hygiene tests
# scan for this.
SHM_PREFIX = "pxring"

# Message parts are padded to this alignment so int64/float64 views of
# the ring are always aligned no matter how the ring position drifts.
_ALIGN = 16
# Per-message prefix: 8-byte sequence number, padded to _ALIGN.
_PREFIX = _ALIGN
# Ring bookkeeping at the start of the segment: head and tail cursors.
_CURSORS = 16


def _align(n: int) -> int:
    return (n + _ALIGN - 1) & ~(_ALIGN - 1)


class ShmRingError(RuntimeError):
    """A ring-protocol violation (generation mismatch, bad release)."""


class ShmRing:
    """SPSC byte ring over one shared-memory segment.

    One process writes (``try_write``), one other process reads
    (``read`` + ``release``); release order must equal write order,
    which the transport guarantees by decoding queue arrivals
    immediately and in order.
    """

    def __init__(self, capacity: int, lock, name: Optional[str] = None):
        from multiprocessing import shared_memory

        capacity = _align(int(capacity))
        if capacity < 4 * _ALIGN:
            raise ValueError("ring capacity too small")
        if name is None:
            name = f"{SHM_PREFIX}_{os.getpid()}_{secrets.token_hex(4)}"
        self.capacity = capacity
        self._lock = lock
        self.shm = shared_memory.SharedMemory(
            create=True, size=_CURSORS + capacity, name=name
        )
        self.creator_pid = os.getpid()
        struct.pack_into("<QQ", self.shm.buf, 0, 0, 0)
        self._next_seq = 0
        self._destroyed = False

    @property
    def name(self) -> str:
        return self.shm.name

    # -- cursor helpers (call with self._lock held) ----------------------
    def _cursors(self) -> Tuple[int, int]:
        return struct.unpack_from("<QQ", self.shm.buf, 0)

    def used_bytes(self) -> int:
        """Bytes currently reserved and not yet released (0 when idle)."""
        with self._lock:
            head, tail = self._cursors()
        return int(head - tail)

    # -- producer side ---------------------------------------------------
    def try_reserve(self, nbytes: int) -> Optional[Tuple[int, int, int]]:
        """Reserve ``nbytes`` of contiguous space (prefix included).

        Returns ``(pos, advance, seq)`` or ``None`` when the ring cannot
        hold the message right now.  ``advance`` includes any wrap
        padding and is what ``release`` must consume.
        """
        total = _align(int(nbytes))
        if total > self.capacity // 2:
            return None
        with self._lock:
            head, tail = self._cursors()
            free = self.capacity - (head - tail)
            pos = head % self.capacity
            pad = 0
            if pos + total > self.capacity:
                pad = self.capacity - pos
                pos = 0
            if pad + total > free:
                return None
            struct.pack_into("<Q", self.shm.buf, 0, head + pad + total)
        seq = self._next_seq
        self._next_seq += 1
        struct.pack_into("<Q", self.shm.buf, _CURSORS + pos, seq)
        return pos, pad + total, seq

    def try_write(self, arrays: Sequence[np.ndarray]
                  ) -> Optional[Tuple[int, int, int, Tuple[int, ...]]]:
        """Copy *arrays* into the ring as one message.

        Returns ``(pos, advance, seq, part_offsets)`` -- offsets are
        relative to the message start -- or ``None`` on no-space.
        """
        offs: List[int] = []
        total = _PREFIX
        for a in arrays:
            offs.append(total)
            total += _align(a.nbytes)
        reserved = self.try_reserve(total)
        if reserved is None:
            return None
        pos, advance, seq = reserved
        base = _CURSORS + pos
        for a, off in zip(arrays, offs):
            dst = np.ndarray(a.shape, dtype=a.dtype, buffer=self.shm.buf,
                             offset=base + off)
            np.copyto(dst, a, casting="no")
            del dst
        return pos, advance, seq, tuple(offs)

    # -- consumer side ---------------------------------------------------
    def read(self, pos: int, seq: int,
             parts: Sequence[Tuple[str, Tuple[int, ...], int]]
             ) -> List[np.ndarray]:
        """Copy a message's arrays out of the ring.

        ``parts`` is ``[(dtype_str, shape, offset), ...]`` as produced by
        the transport header.  Raises :class:`ShmRingError` if the slot's
        generation prefix does not match ``seq`` (the slot was
        overwritten -- a protocol violation, never a data race in correct
        operation).
        """
        base = _CURSORS + pos
        (got,) = struct.unpack_from("<Q", self.shm.buf, base)
        if got != seq:
            raise ShmRingError(
                f"shm ring {self.name}: generation mismatch at pos {pos} "
                f"(expected seq {seq}, slot holds {got})"
            )
        out: List[np.ndarray] = []
        for dtype_str, shape, off in parts:
            src = np.ndarray(tuple(shape), dtype=np.dtype(dtype_str),
                             buffer=self.shm.buf, offset=base + off)
            out.append(src.copy())
            del src
        return out

    def release(self, advance: int) -> None:
        """Return ``advance`` bytes to the producer (consumption done)."""
        with self._lock:
            head, tail = self._cursors()
            if tail + advance > head:
                raise ShmRingError(
                    f"shm ring {self.name}: release({advance}) past head"
                )
            struct.pack_into("<Q", self.shm.buf, 8, tail + advance)

    # -- lifecycle -------------------------------------------------------
    def destroy(self) -> None:
        """Close this mapping; unlink the segment in the creator process.

        Idempotent.  Fork-inherited copies in workers only close their
        own mapping -- the pid guard keeps a worker's exit from tearing
        the segment away from live peers.
        """
        if self._destroyed:
            return
        self._destroyed = True
        try:
            self.shm.close()
        except BufferError:  # a stray view still alive; mapping dies with us
            pass
        if os.getpid() == self.creator_pid:
            try:
                self.shm.unlink()
            except FileNotFoundError:
                pass


def live_segments() -> List[str]:
    """Names of this host's live transport segments (leak checks).

    Scans ``/dev/shm`` where the platform exposes it (Linux); on other
    platforms returns an empty list, which keeps the hygiene tests
    trivially green rather than flaky.
    """
    root = "/dev/shm"
    if not os.path.isdir(root):
        return []
    return sorted(n for n in os.listdir(root) if n.startswith(SHM_PREFIX))
