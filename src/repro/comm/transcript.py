"""Transfer transcript: the byte-level record of one training iteration.

The paper's architectural argument (section 3.1, Table 3) is entirely
about *how many bytes cross each machine's NIC per iteration*.  Every
communication primitive in the reproduction records its transfers here;
tests then check the totals against the paper's closed forms, and the
performance simulator replays the same flows through the network model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional


@dataclass(frozen=True)
class Transfer:
    """One directed data movement between machines.

    ``stage`` orders transfers that must be sequential (ring steps); flows
    in the same stage may overlap on the network.
    """

    tag: str
    src_machine: int
    dst_machine: int
    nbytes: int
    stage: int = 0

    @property
    def is_network(self) -> bool:
        """Whether this transfer crosses machine boundaries.

        Intra-machine movement (server and worker colocated, GPU-to-GPU)
        is recorded for completeness but costs no NIC bandwidth -- the
        paper's model likewise excludes it ("server and worker processes
        in the same machine communicate locally").
        """
        return self.src_machine != self.dst_machine


@dataclass(frozen=True)
class Note:
    """One annotated runtime event (fault injection, rescale, recovery).

    Notes carry no bytes -- they mark *when* something happened on the
    same timeline the transfers live on, so the chaos tests can correlate
    byte movement with the failure schedule that produced it.
    """

    tag: str
    iteration: int
    info: tuple  # sorted (key, value) pairs, hashable

    def get(self, key: str, default=None):
        return dict(self.info).get(key, default)


@dataclass(frozen=True)
class TranscriptCursor:
    """Opaque position in a :class:`Transcript`'s two append-only streams."""

    num_transfers: int
    num_events: int


class Transcript:
    """Append-only list of transfers plus aggregation helpers."""

    def __init__(self):
        self._transfers: List[Transfer] = []
        self._events: List[Note] = []

    def record(self, tag: str, src_machine: int, dst_machine: int,
               nbytes: int, stage: int = 0) -> None:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return
        self._transfers.append(
            Transfer(tag, int(src_machine), int(dst_machine), int(nbytes),
                     int(stage))
        )

    def note(self, tag: str, iteration: int, **info) -> None:
        """Record a zero-byte runtime event (fault, rescale, recovery)."""
        self._events.append(
            Note(tag, int(iteration), tuple(sorted(info.items())))
        )

    def extend(self, transfers: Iterable[Transfer] = (),
               events: Iterable[Note] = ()) -> None:
        """Append already-built records (merging per-worker transcripts).

        The multiprocess backend ships each worker's transcript delta to
        the controller after every step and appends them here in worker
        rank order -- see :func:`merge_transcripts` for the ordering
        contract.
        """
        self._transfers.extend(transfers)
        self._events.extend(events)

    def cursor(self) -> "TranscriptCursor":
        """Position marker for :meth:`since` -- O(1), never invalidated.

        The transcript is append-only (``clear`` aside), so a cursor is
        just the current lengths of the two streams; ``since`` slices
        everything recorded after it.  The autopilot's telemetry folds
        per-step deltas this way without copying the whole history.
        """
        return TranscriptCursor(len(self._transfers), len(self._events))

    def since(self, cursor: "TranscriptCursor",
              ) -> "tuple[List[Transfer], List[Note]]":
        """Transfers and events recorded after *cursor* was taken."""
        return (self._transfers[cursor.num_transfers:],
                self._events[cursor.num_events:])

    def events(self, tag_prefix: Optional[str] = None) -> List[Note]:
        if tag_prefix is None:
            return list(self._events)
        return [e for e in self._events if e.tag.startswith(tag_prefix)]

    def clear(self) -> None:
        self._transfers = []
        self._events = []

    @property
    def transfers(self) -> List[Transfer]:
        return list(self._transfers)

    def filter(self, tag_prefix: Optional[str] = None,
               network_only: bool = True) -> List[Transfer]:
        out = []
        for t in self._transfers:
            if network_only and not t.is_network:
                continue
            if tag_prefix is not None and not t.tag.startswith(tag_prefix):
                continue
            out.append(t)
        return out

    def total_network_bytes(self, tag_prefix: Optional[str] = None) -> int:
        return sum(t.nbytes for t in self.filter(tag_prefix))

    def bytes_per_machine(self, tag_prefix: Optional[str] = None,
                          ) -> Dict[int, Dict[str, int]]:
        """Per-machine NIC load: ``{machine: {"out": bytes, "in": bytes}}``.

        This is the quantity in the paper's Table 3 ("the amount of
        network transfer required per machine").
        """
        loads: Dict[int, Dict[str, int]] = {}
        for t in self.filter(tag_prefix):
            loads.setdefault(t.src_machine, {"out": 0, "in": 0})["out"] += t.nbytes
            loads.setdefault(t.dst_machine, {"out": 0, "in": 0})["in"] += t.nbytes
        return loads

    def max_machine_bytes(self, tag_prefix: Optional[str] = None) -> int:
        """The busiest NIC's total (in + out) -- the PS hot-spot metric."""
        loads = self.bytes_per_machine(tag_prefix)
        if not loads:
            return 0
        return max(v["out"] + v["in"] for v in loads.values())

    def __len__(self) -> int:
        return len(self._transfers)


def merge_transcripts(parts: Iterable[Transcript]) -> Transcript:
    """Deterministically merge per-worker transcripts into one.

    Ordering contract: workers in the order given (rank order), each
    worker's internal record order preserved.  Merging is therefore a
    pure function of the inputs -- the aggregate views (byte totals,
    per-machine loads, event queries) are identical no matter when the
    merge happens, which the multiprocess backend's tests rely on.
    """
    merged = Transcript()
    for part in parts:
        merged.extend(part.transfers, part.events())
    return merged
