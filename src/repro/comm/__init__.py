"""Communication substrate: collectives, PS runtime, byte accounting.

Every primitive both *moves data* (numpy arrays / IndexedSlices between
logical workers) and *records transfers* into a :class:`Transcript`, so the
same execution yields correctness results and the per-machine network-byte
profile the paper's Table 3 analyses.
"""

from repro.comm.transcript import Note, Transcript, Transfer, merge_transcripts
from repro.comm.transport import (
    InMemoryTransport,
    MultiprocTransport,
    ShmTransport,
    Transport,
)
from repro.comm.allreduce import ring_allreduce, ring_allreduce_mean
from repro.comm.allgatherv import ring_allgatherv
from repro.comm.ps import (
    DenseAccumulator,
    SparseAccumulator,
    place_variables,
)

__all__ = [
    "Note",
    "Transcript",
    "Transfer",
    "merge_transcripts",
    "Transport",
    "InMemoryTransport",
    "MultiprocTransport",
    "ShmTransport",
    "ring_allreduce",
    "ring_allreduce_mean",
    "ring_allgatherv",
    "DenseAccumulator",
    "SparseAccumulator",
    "place_variables",
]
