"""Ring AllReduce: the NCCL-style collective for dense gradients.

The ring algorithm (Patarasuk & Yuan) runs in two phases over N workers:
N-1 *reduce-scatter* steps, after which worker ``i`` holds the fully
reduced chunk ``(i+1) mod N``, then N-1 *allgather* steps that circulate
the reduced chunks.  Each worker sends and receives ``size/N`` elements
per step, giving the paper's ``4w(N-1)/N`` bytes per machine for one
variable of ``w`` bytes (section 3.1, Figure 2(c)).

This module executes the real algorithm over numpy buffers -- results are
bit-identical across workers by construction -- and records every chunk
movement into the transcript.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.comm.transcript import Transcript


def chunk_bounds(size: int, num_chunks: int) -> List[int]:
    """Split ``size`` elements into ``num_chunks`` contiguous chunks."""
    base, extra = divmod(size, num_chunks)
    bounds = [0]
    for c in range(num_chunks):
        bounds.append(bounds[-1] + base + (1 if c < extra else 0))
    return bounds


def ring_allreduce(
    arrays: Sequence[np.ndarray],
    machines: Optional[Sequence[int]] = None,
    transcript: Optional[Transcript] = None,
    tag: str = "allreduce",
    stage_offset: int = 0,
    bounds: Optional[Sequence[int]] = None,
    wire_itemsize: Optional[int] = None,
) -> List[np.ndarray]:
    """Sum *arrays* across workers via the ring algorithm.

    Args:
        arrays: one gradient array per worker (all the same shape).
        machines: machine id of each worker, for transfer accounting;
            defaults to one worker per machine.
        transcript: where to record chunk transfers (optional).
        tag: transcript tag.
        stage_offset: starting stage number (lets several collectives in
            one iteration keep distinct orderings).
        bounds: custom chunk boundaries (one chunk per worker over the
            flattened array).  Fused buckets pass the boundaries of their
            packed layout; the default splits evenly.
        wire_itemsize: bytes per element *on the wire* for transfer
            accounting (defaults to the in-memory fp32 itemsize).  The
            fp16-compressed collective sums quantized values in fp32 --
            the NCCL half-precision ring keeps fp32 accumulators -- but
            each chunk crosses the network at two bytes per element.

    Returns:
        A list with each worker's copy of the reduced array.
    """
    n = len(arrays)
    if n == 0:
        raise ValueError("ring_allreduce needs at least one worker")
    shape = np.asarray(arrays[0]).shape
    for a in arrays[1:]:
        if np.asarray(a).shape != shape:
            raise ValueError("all workers must contribute the same shape")
    if machines is None:
        machines = list(range(n))
    if len(machines) != n:
        raise ValueError("machines must have one entry per worker")
    if n == 1:
        return [np.array(arrays[0], copy=True)]

    flats = [np.asarray(a).reshape(-1).astype(np.float32, copy=True)
             for a in arrays]
    if bounds is None:
        bounds = chunk_bounds(flats[0].size, n)
    else:
        bounds = [int(b) for b in bounds]
        if (len(bounds) != n + 1 or bounds[0] != 0
                or bounds[-1] != flats[0].size
                or any(lo > hi for lo, hi in zip(bounds, bounds[1:]))):
            raise ValueError(
                "bounds must be monotone, cover the flattened array, and "
                "define one chunk per worker"
            )

    itemsize = wire_itemsize if wire_itemsize is not None \
        else flats[0].itemsize

    def record(src: int, dst: int, lo: int, hi: int, stage: int) -> None:
        if transcript is not None:
            transcript.record(tag, machines[src], machines[dst],
                              (hi - lo) * itemsize,
                              stage=stage_offset + stage)

    # Phase 1: reduce-scatter.  At step s, worker i sends chunk (i - s) mod n
    # to its ring successor, which accumulates it.
    for step in range(n - 1):
        sends = []
        for i in range(n):
            c = (i - step) % n
            lo, hi = bounds[c], bounds[c + 1]
            sends.append((i, (i + 1) % n, lo, hi, flats[i][lo:hi].copy()))
        for src, dst, lo, hi, data in sends:
            flats[dst][lo:hi] += data
            record(src, dst, lo, hi, step)

    # Phase 2: allgather.  Worker i now owns reduced chunk (i + 1) mod n and
    # circulates it around the ring.
    for step in range(n - 1):
        sends = []
        for i in range(n):
            c = (i + 1 - step) % n
            lo, hi = bounds[c], bounds[c + 1]
            sends.append((i, (i + 1) % n, lo, hi, flats[i][lo:hi].copy()))
        for src, dst, lo, hi, data in sends:
            flats[dst][lo:hi] = data
            record(src, dst, lo, hi, (n - 1) + step)

    return [f.reshape(shape) for f in flats]


def fused_segment_layout(sizes: Sequence[int], num_workers: int):
    """Packed layout for a fusion bucket of several gradient segments.

    Tensor fusion must not change training arithmetic: the sum order of
    every element in a ring AllReduce is fixed by the chunk it falls in
    (the chunk index picks the worker the accumulation starts from), so
    naively chunking a concatenated buffer would move chunk boundaries
    and produce results that differ bitwise from unfused collectives.

    This layout instead permutes the concatenated buffer so that chunk
    ``c`` of *every* segment (under that segment's own ``chunk_bounds``)
    lands contiguously inside fused chunk ``c``.  One ring pass over the
    permuted buffer then sends one fused message per step while
    performing, element for element, exactly the additions the
    per-segment rings would -- fused results are bit-identical to
    unfused ones by construction.

    Returns ``(perm, inv_perm, bounds)``: the packing permutation, its
    inverse, and the fused chunk boundaries to pass to
    :func:`ring_allreduce`.
    """
    n = num_workers
    if n < 1:
        raise ValueError("num_workers must be >= 1")
    sizes = [int(s) for s in sizes]
    if any(s < 0 for s in sizes):
        raise ValueError("segment sizes must be >= 0")
    seg_bounds = [chunk_bounds(s, n) for s in sizes]
    offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    pieces = []
    bounds = [0]
    for c in range(n):
        for off, sb in zip(offsets[:-1], seg_bounds):
            pieces.append(np.arange(off + sb[c], off + sb[c + 1],
                                    dtype=np.int64))
        bounds.append(bounds[-1]
                      + sum(sb[c + 1] - sb[c] for sb in seg_bounds))
    perm = (np.concatenate(pieces) if pieces
            else np.zeros(0, dtype=np.int64))
    inv_perm = np.empty_like(perm)
    inv_perm[perm] = np.arange(perm.size, dtype=np.int64)
    return perm, inv_perm, bounds


def ring_allreduce_mean(
    arrays: Sequence[np.ndarray],
    machines: Optional[Sequence[int]] = None,
    transcript: Optional[Transcript] = None,
    tag: str = "allreduce",
    stage_offset: int = 0,
) -> List[np.ndarray]:
    """Ring AllReduce followed by division by the worker count."""
    reduced = ring_allreduce(arrays, machines, transcript, tag, stage_offset)
    n = len(arrays)
    return [r / np.float32(n) for r in reduced]
