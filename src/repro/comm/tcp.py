"""Cross-host transport: length-prefixed frames over TCP sockets.

This is the plane ROADMAP item 1 asks for -- the same rank-addressed
``send``/``recv`` contract as the in-host transports, but over real
sockets, so a fleet can span machines.  Two bootstrap modes share one
:class:`TcpTransport`:

* **fork mode** (the default constructor): the controller binds one
  listening socket per endpoint *before* the workers fork, exactly like
  :class:`~repro.comm.transport.ShmTransport` pre-creates its rings.
  Children inherit the bound sockets, so there is no name lookup or
  connect race -- every address exists before any process runs.
* **rendezvous mode** (:meth:`TcpTransport.for_rank`): each process is
  launched independently (``repro.cli launch``), binds its own listener,
  and learns everyone else's address from a ``tcp://host:port``
  bootstrap server (:class:`RendezvousServer`, run by the controller).
  The join exchanges ``rank -> (host, port)`` maps and barriers before
  the first step, mirroring the ``init_process_group`` bootstrap of the
  mainstream frameworks.

Wire format
-----------
One frame per message::

    !II header: (meta_len, payload_len)
    meta:       pickled (src_rank, key, kind, array_metas, extra)
    payload:    payload_len raw bytes

``kind`` selects the payload encoding -- ``"p"`` is a pickled value;
``"a"``/``"s"`` (the :func:`~repro.comm.transport.wire_parts` bulk
paths) carry raw C-order array bytes with dtype/shape/nbytes in
``array_metas``, so eligible ndarrays and IndexedSlices cross the
socket without an intermediate pickle copy.  The ``a.tobytes()`` at
``send`` time *is* the freeze-at-send semantics the other transports
get from eager pickling or the ring copy: a sender mutating the array
afterwards cannot corrupt the frame.  The receiver rebuilds arrays
with ``np.frombuffer`` over the exclusively-owned read buffer -- no
second copy.

Connections are created on demand, one duplex socket per rank pair in
the dominant command/response pattern: the first sender connects and
announces its endpoint index (a 4-byte hello), the acceptor registers
the socket for its own replies.  Every connection gets a blocking
reader thread that decodes frames into the endpoint's inbox queue
continuously -- which is what keeps ``send`` effectively non-blocking
(the peer always drains its socket, independent of application
``recv`` calls) and the fleet deadlock-free.

Counter accounting: every frame adds its payload to ``wire_bytes`` /
``wire_msgs`` (physical socket traffic, what ``bench --network``
calibrates against); pickle-path frames *also* count ``pickle_bytes``
/ ``pickle_msgs`` (serialization cost), and each bulk ``tobytes``
freeze is one ``copy_count``.  Transcript records use payload bytes,
same as the other planes.  The timeout contract is the shared one (one
monotonic deadline per ``recv`` call; see
:mod:`repro.comm.transport`).
"""

from __future__ import annotations

import pickle
import queue as queue_mod
import socket
import struct
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.comm.transport import (
    CONTROLLER,
    Transport,
    TransportError,
    TransportTimeout,
    _remaining,
    wire_parts,
)

_HEADER = struct.Struct("!II")
_HELLO = struct.Struct("!I")
_OBJ_LEN = struct.Struct("!I")


def parse_rendezvous(url: str) -> Tuple[str, int]:
    """``tcp://host:port`` -> ``(host, port)``."""
    if not url.startswith("tcp://"):
        raise ValueError(f"rendezvous url must be tcp://host:port, got {url!r}")
    hostport = url[len("tcp://"):]
    host, sep, port = hostport.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(f"rendezvous url must be tcp://host:port, got {url!r}")
    return host, int(port)


def bind_listener(host: str = "127.0.0.1", port: int = 0) -> socket.socket:
    """A bound, listening TCP socket (port 0 = OS-assigned)."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen(64)
    return sock


def _read_exact(sock: socket.socket, n: int) -> bytearray:
    """Exactly *n* bytes from *sock* (blocking); EOFError on early close."""
    buf = bytearray(n)
    view = memoryview(buf)
    got = 0
    while got < n:
        r = sock.recv_into(view[got:], n - got)
        if r == 0:
            raise EOFError(f"peer closed after {got}/{n} bytes")
        got += r
    return buf


def _shutdown_close(sock: Optional[socket.socket]) -> None:
    """Close *sock*, waking any thread blocked in accept/recv on it."""
    if sock is None:
        return
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


def _send_obj(sock: socket.socket, obj) -> None:
    """One length-prefixed pickled object (rendezvous control plane)."""
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_OBJ_LEN.pack(len(data)) + data)


def _recv_obj(sock: socket.socket):
    (n,) = _OBJ_LEN.unpack(bytes(_read_exact(sock, _OBJ_LEN.size)))
    return pickle.loads(bytes(_read_exact(sock, n)))


class _Endpoint:
    """One rank's socket machinery: listener, connections, inbox.

    The accept thread learns each inbound peer from its hello and
    registers the socket for duplex reuse; one blocking reader thread
    per connection decodes frames straight into :attr:`inbox`.  All
    sends to one peer serialize on that connection's lock so frames
    never interleave.
    """

    def __init__(self, transport: "TcpTransport", idx: int,
                 listener: socket.socket):
        self.transport = transport
        self.idx = idx
        self.listener = listener
        self.inbox: "queue_mod.Queue" = queue_mod.Queue()
        self.pending: Dict[Tuple[int, Tuple], deque] = {}
        # peer idx -> (socket, send lock); guarded by conn_lock.
        self.conns: Dict[int, Tuple[socket.socket, threading.Lock]] = {}
        self.conn_lock = threading.Lock()
        self.closed = False
        self._readers: List[threading.Thread] = []
        self._accepter = threading.Thread(
            target=self._accept_loop, daemon=True,
            name=f"tcp-accept-{idx}",
        )
        self._accepter.start()

    # -- connection management -------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _ = self.listener.accept()
                (peer,) = _HELLO.unpack(
                    bytes(_read_exact(sock, _HELLO.size)))
            except (OSError, EOFError):
                return  # listener closed (endpoint shutdown)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self.conn_lock:
                if self.closed:
                    _shutdown_close(sock)
                    return
                # Duplex reuse: replies ride the inbound socket unless a
                # simultaneous-connect race already registered one (then
                # this socket is read-only and both still deliver).
                self.conns.setdefault(peer, (sock, threading.Lock()))
                self._spawn_reader(sock)

    def _spawn_reader(self, sock: socket.socket) -> None:
        thread = threading.Thread(
            target=self._read_loop, args=(sock,), daemon=True,
            name=f"tcp-read-{self.idx}",
        )
        thread.start()
        self._readers.append(thread)

    def _connection(self, peer: int) -> Tuple[socket.socket, threading.Lock]:
        """The (socket, lock) for *peer*, connecting on demand."""
        with self.conn_lock:
            if self.closed:
                raise TransportError("transport is closed")
            conn = self.conns.get(peer)
            if conn is not None:
                return conn
            addr = self.transport._addrs[peer]
            deadline = (time.monotonic()
                        + self.transport.connect_timeout)
            while True:
                try:
                    sock = socket.create_connection(addr, timeout=5.0)
                    break
                except OSError:
                    if time.monotonic() >= deadline:
                        raise TransportError(
                            f"cannot connect to endpoint {peer} at "
                            f"{addr}"
                        ) from None
                    time.sleep(0.05)
            sock.settimeout(None)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.sendall(_HELLO.pack(self.idx))
            conn = (sock, threading.Lock())
            self.conns[peer] = conn
            self._spawn_reader(sock)
            return conn

    # -- receive path ----------------------------------------------------
    def _read_loop(self, sock: socket.socket) -> None:
        try:
            while True:
                header = _read_exact(sock, _HEADER.size)
                meta_len, payload_len = _HEADER.unpack(bytes(header))
                meta = pickle.loads(bytes(_read_exact(sock, meta_len)))
                payload = (_read_exact(sock, payload_len)
                           if payload_len else bytearray())
                src, key, value = self.transport._decode(meta, payload)
                self.inbox.put((src, key, value))
        except (OSError, EOFError):
            return  # peer gone or endpoint closing
        except Exception:
            if not self.closed:
                raise

    # -- shutdown --------------------------------------------------------
    def close(self) -> None:
        with self.conn_lock:
            if self.closed:
                return
            self.closed = True
            conns = list(self.conns.values())
            self.conns.clear()
        _shutdown_close(self.listener)
        for sock, _ in conns:
            _shutdown_close(sock)
        self._accepter.join(timeout=1.0)
        for thread in self._readers:
            thread.join(timeout=1.0)


class TcpTransport(Transport):
    """Rank-addressed messaging over TCP; see the module docstring.

    Endpoints (sockets, reader threads, inbox) are created lazily per
    local rank on first use -- after the fork in fork mode, so threads
    never cross a fork boundary, and only for ranks this process
    actually is.  Several endpoints can coexist in one process, which
    is what the conformance suite exercises.
    """

    name = "tcp"

    def __init__(self, num_workers: int, host: str = "127.0.0.1",
                 addrs: Optional[Dict[int, Tuple[str, int]]] = None,
                 listeners: Optional[Dict[int, socket.socket]] = None,
                 connect_timeout: float = 20.0):
        super().__init__(num_workers)
        self.host = host
        self.connect_timeout = float(connect_timeout)
        self._endpoints: Dict[int, _Endpoint] = {}
        self._ep_lock = threading.Lock()
        self._closed = False
        if addrs is None:
            # Fork mode: bind every endpoint's listener now, pre-fork;
            # children inherit the bound sockets and their addresses.
            self._listeners = {
                idx: bind_listener(host)
                for idx in range(num_workers + 1)
            }
            self._addrs = {
                idx: sock.getsockname()
                for idx, sock in self._listeners.items()
            }
        else:
            self._addrs = {int(k): tuple(v) for k, v in addrs.items()}
            self._listeners = dict(listeners or {})
            missing = set(range(num_workers + 1)) - set(self._addrs)
            if missing:
                raise ValueError(
                    f"address map missing endpoints {sorted(missing)}"
                )

    @classmethod
    def for_rank(cls, num_workers: int, rank: int,
                 rank_addrs: Dict[int, Tuple[str, int]],
                 listener: socket.socket,
                 connect_timeout: float = 20.0) -> "TcpTransport":
        """Rendezvous-mode endpoint for one launched process.

        *rank_addrs* is the rendezvous map keyed by rank (including
        :data:`CONTROLLER`); *listener* is this process' already-bound
        listening socket (its address is what the join announced).
        """
        idx_of = (lambda r: num_workers if r == CONTROLLER else r)
        addrs = {idx_of(int(r)): tuple(a) for r, a in rank_addrs.items()}
        return cls(num_workers, addrs=addrs,
                   listeners={idx_of(rank): listener},
                   connect_timeout=connect_timeout)

    # -- endpoint plumbing -----------------------------------------------
    def _idx(self, rank: int) -> int:
        return self.num_workers if rank == CONTROLLER else rank

    def _endpoint(self, rank: int) -> _Endpoint:
        idx = self._idx(rank)
        with self._ep_lock:
            if self._closed:
                raise TransportError("transport is closed")
            endpoint = self._endpoints.get(idx)
            if endpoint is None:
                listener = self._listeners.get(idx)
                if listener is None:
                    raise TransportError(
                        f"no local listener for rank {rank}; this "
                        f"process only hosts {sorted(self._listeners)}"
                    )
                endpoint = _Endpoint(self, idx, listener)
                self._endpoints[idx] = endpoint
            return endpoint

    # -- encode / decode -------------------------------------------------
    def _encode(self, src: int, key: Tuple, value) -> Tuple[bytes, List]:
        """``(header+meta, payload_chunks)`` for one frame, counted."""
        t0 = time.perf_counter()
        c = self.counters
        parts = wire_parts(value)
        if parts is None:
            payload = pickle.dumps(value,
                                   protocol=pickle.HIGHEST_PROTOCOL)
            chunks = [payload]
            meta = (src, key, "p", None, None)
            c["pickle_bytes"] += len(payload)
            c["pickle_msgs"] += 1
        else:
            kind, arrays, extra = parts
            # The C-order copy is the freeze: later in-place mutation
            # of the source array cannot reach the socket.
            chunks = [a.tobytes() for a in arrays]
            metas = tuple(
                (a.dtype.str, a.shape, len(chunk))
                for a, chunk in zip(arrays, chunks)
            )
            meta = (src, key, kind, metas, extra)
            c["copy_count"] += 1
        meta_bytes = pickle.dumps(meta,
                                  protocol=pickle.HIGHEST_PROTOCOL)
        payload_len = sum(len(chunk) for chunk in chunks)
        c["wire_bytes"] += payload_len
        c["wire_msgs"] += 1
        c["serialize_s"] += time.perf_counter() - t0
        header = _HEADER.pack(len(meta_bytes), payload_len)
        return header + meta_bytes, chunks

    def _decode(self, meta, payload: bytearray):
        """``(src, key, value)`` from one frame's meta + payload."""
        t0 = time.perf_counter()
        src, key, kind, metas, extra = meta
        if kind == "p":
            value = pickle.loads(bytes(payload))
        else:
            import numpy as np

            view = memoryview(payload)
            arrays, off = [], 0
            for dtype, shape, nbytes in metas:
                arrays.append(
                    np.frombuffer(view[off:off + nbytes],
                                  dtype=dtype).reshape(shape))
                off += nbytes
            if kind == "a":
                value = arrays[0]
            else:
                from repro.tensor.sparse import IndexedSlices

                value = IndexedSlices._wrap(arrays[0], arrays[1],
                                            tuple(extra))
        self.counters["deserialize_s"] += time.perf_counter() - t0
        return src, key, value

    # -- transport interface ---------------------------------------------
    def send(self, src: int, dst: int, key: Tuple, value) -> None:
        if self._closed:
            raise TransportError("transport is closed")
        self._check_rank(src, "source")
        self._check_rank(dst, "destination")
        endpoint = self._endpoint(src)
        frame, chunks = self._encode(src, key, value)
        self._record(src, dst, key,
                     sum(len(chunk) for chunk in chunks))
        sock, lock = endpoint._connection(self._idx(dst))
        try:
            with lock:
                sock.sendall(frame)
                for chunk in chunks:
                    sock.sendall(chunk)
        except OSError as exc:
            raise TransportError(
                f"send {src}->{dst} {key!r} failed: {exc}"
            ) from exc

    def recv(self, dst: int, src: int, key: Tuple,
             timeout: Optional[float] = None):
        self._check_rank(src, "source")
        self._check_rank(dst, "destination")
        endpoint = self._endpoint(dst)
        want = (src, key)
        box = endpoint.pending.get(want)
        if box:
            return box.popleft()
        # Shared timeout contract: one deadline, buffered non-matching
        # arrivals never restart the clock.
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while True:
            remaining = _remaining(deadline)
            if remaining is not None and remaining <= 0:
                raise TransportTimeout(
                    f"no message {src}->{dst} {key!r} within {timeout}s"
                )
            try:
                got_src, got_key, value = endpoint.inbox.get(
                    timeout=remaining)
            except queue_mod.Empty:
                raise TransportTimeout(
                    f"no message {src}->{dst} {key!r} within {timeout}s"
                ) from None
            if (got_src, got_key) == want:
                return value
            endpoint.pending.setdefault((got_src, got_key),
                                        deque()).append(value)

    def drain(self, dst: int) -> int:
        """Discard every buffered message for *dst* (error paths)."""
        endpoint = self._endpoint(dst)
        dropped = sum(len(box) for box in endpoint.pending.values())
        endpoint.pending.clear()
        while True:
            try:
                endpoint.inbox.get_nowait()
                dropped += 1
            except queue_mod.Empty:
                return dropped

    def close(self) -> None:
        with self._ep_lock:
            if self._closed:
                return
            self._closed = True
            endpoints = list(self._endpoints.values())
            self._endpoints.clear()
            listeners = list(self._listeners.values())
            self._listeners.clear()
        for endpoint in endpoints:
            endpoint.close()
        for listener in listeners:
            # Listeners of endpoints this process never hosted (fork
            # mode inherits all of them) still hold their ports.
            _shutdown_close(listener)


class RendezvousServer:
    """The ``tcp://host:port`` bootstrap the controller runs.

    Accepts exactly *world_size* worker joins (``("join", rank, addr)``),
    replies to each with the full rank -> address map (including the
    controller's own transport address), then barriers: every worker
    sends ``("ready", rank)`` and is released with ``("go",)`` only
    after all are ready -- so nobody steps before the whole fleet can
    be reached.
    """

    def __init__(self, world_size: int,
                 controller_addr: Tuple[str, int],
                 host: str = "127.0.0.1", port: int = 0):
        if world_size < 1:
            raise ValueError("rendezvous needs at least one worker")
        self.world_size = world_size
        self.controller_addr = tuple(controller_addr)
        self._sock = bind_listener(host, port)
        self.addr = self._sock.getsockname()
        self.url = f"tcp://{self.addr[0]}:{self.addr[1]}"
        self._map: Optional[Dict[int, Tuple[str, int]]] = None
        self._error: Optional[BaseException] = None
        self._done = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "RendezvousServer":
        self._thread = threading.Thread(
            target=self._serve, daemon=True, name="tcp-rendezvous",
        )
        self._thread.start()
        return self

    def _serve(self) -> None:
        conns: Dict[int, Tuple[socket.socket, Tuple[str, int]]] = {}
        try:
            while len(conns) < self.world_size:
                sock, _ = self._sock.accept()
                tag, rank, addr = _recv_obj(sock)
                if tag != "join":
                    raise TransportError(
                        f"expected join, got {tag!r}")
                if rank in conns:
                    raise TransportError(
                        f"rank {rank} joined the rendezvous twice")
                if not 0 <= rank < self.world_size:
                    raise TransportError(
                        f"join rank {rank} out of range "
                        f"[0, {self.world_size})")
                conns[rank] = (sock, tuple(addr))
            addr_map = {rank: addr
                        for rank, (_, addr) in conns.items()}
            addr_map[CONTROLLER] = self.controller_addr
            for sock, _ in conns.values():
                _send_obj(sock, ("map", addr_map))
            for rank, (sock, _) in conns.items():
                tag, got = _recv_obj(sock)
                if tag != "ready" or got != rank:
                    raise TransportError(
                        f"rank {rank} broke the barrier: "
                        f"({tag!r}, {got!r})")
            for sock, _ in conns.values():
                _send_obj(sock, ("go",))
            self._map = addr_map
        except BaseException as exc:
            self._error = exc
        finally:
            for sock, _ in conns.values():
                _shutdown_close(sock)
            _shutdown_close(self._sock)
            self._done.set()

    def wait(self, timeout: Optional[float] = None,
             ) -> Dict[int, Tuple[str, int]]:
        """Block until the barrier released; the rank -> address map."""
        if not self._done.wait(timeout):
            _shutdown_close(self._sock)
            raise TransportTimeout(
                f"rendezvous did not complete within {timeout}s "
                f"({self.world_size} workers expected)"
            )
        if self._error is not None:
            raise TransportError(
                f"rendezvous failed: {self._error}"
            ) from self._error
        return dict(self._map)


def rendezvous_join(url: str, rank: int, addr: Tuple[str, int],
                    timeout: float = 60.0,
                    ) -> Dict[int, Tuple[str, int]]:
    """Join the bootstrap at *url* as *rank*, announcing *addr*.

    Retries the connect until *timeout* (workers typically race the
    controller to the rendezvous port), runs the join/map/ready/go
    exchange, and returns the rank -> address map.
    """
    host, port = parse_rendezvous(url)
    deadline = time.monotonic() + timeout
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=5.0)
            break
        except OSError:
            if time.monotonic() >= deadline:
                raise TransportTimeout(
                    f"cannot reach rendezvous {url} within {timeout}s"
                ) from None
            time.sleep(0.1)
    try:
        sock.settimeout(max(1.0, deadline - time.monotonic()))
        _send_obj(sock, ("join", rank, tuple(addr)))
        tag, addr_map = _recv_obj(sock)
        if tag != "map":
            raise TransportError(f"expected map, got {tag!r}")
        _send_obj(sock, ("ready", rank))
        (tag,) = _recv_obj(sock)
        if tag != "go":
            raise TransportError(f"expected go, got {tag!r}")
        return addr_map
    finally:
        _shutdown_close(sock)
