"""Ring AllGatherv: the collective Horovod falls back to for sparse grads.

AllGatherv concatenates variable-length contributions from every worker
(here: IndexedSlices gradients) and delivers the concatenation to all of
them.  With the ring schedule each worker forwards, over N-1 steps, the
pieces it has received so far; every worker's payload of ``alpha*w`` bytes
traverses N-1 links, giving the paper's ``2*alpha*w*(N-1)`` bytes per
machine for one variable (section 3.1, Figure 2(d)) -- the term that makes
pure-AR training of sparse models collapse at scale.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.comm.transcript import Transcript
from repro.tensor.sparse import IndexedSlices, concat_slices


def ring_allgatherv(
    contributions: Sequence[IndexedSlices],
    machines: Optional[Sequence[int]] = None,
    transcript: Optional[Transcript] = None,
    tag: str = "allgatherv",
    stage_offset: int = 0,
) -> List[IndexedSlices]:
    """Gather every worker's IndexedSlices to all workers (ring schedule).

    Returns one concatenated IndexedSlices per worker; all copies are
    identical, ordered by originating worker index.  Duplicate indices are
    preserved (the consumer decides whether to combine), matching the
    paper's description of AllGatherv as pure concatenation.
    """
    n = len(contributions)
    if n == 0:
        raise ValueError("ring_allgatherv needs at least one worker")
    shape = contributions[0].dense_shape
    for c in contributions[1:]:
        if c.dense_shape != shape:
            raise ValueError("all contributions must share dense_shape")
    if machines is None:
        machines = list(range(n))
    if len(machines) != n:
        raise ValueError("machines must have one entry per worker")
    if n == 1:
        return [contributions[0].copy()]

    # held[i] maps origin-worker -> slices currently held by worker i.
    held = [{i: contributions[i].copy()} for i in range(n)]

    for step in range(n - 1):
        sends = []
        for i in range(n):
            origin = (i - step) % n
            sends.append((i, (i + 1) % n, origin, held[i][origin]))
        for src, dst, origin, data in sends:
            held[dst][origin] = data.copy()
            if transcript is not None:
                # Indices ride along with values; the paper's model treats
                # the index payload as negligible but we record it under a
                # separate tag so the approximation is checkable.
                transcript.record(tag, machines[src], machines[dst],
                                  data.value_nbytes,
                                  stage=stage_offset + step)
                transcript.record(f"idx:{tag}", machines[src],
                                  machines[dst], data.index_nbytes,
                                  stage=stage_offset + step)

    results = []
    for i in range(n):
        ordered = [held[i][origin] for origin in range(n)]
        results.append(concat_slices(ordered))
    return results
