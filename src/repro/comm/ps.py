"""Parameter-server runtime pieces: accumulators and variable placement.

TensorFlow's synchronous PS training aggregates gradients in *conditional
accumulators* on the servers: each worker pushes its gradient, and once
``num_required`` gradients have arrived, the chief worker takes the
aggregate and applies the update (paper section 5, "we first place
accumulators on servers ... each accumulator handles gradients of a single
sparse variable").  These classes implement that protocol in-process.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.tensor.sparse import IndexedSlices, concat_slices


class DenseAccumulator:
    """Sums dense gradients from ``num_required`` workers."""

    def __init__(self, num_required: int, average: bool = False):
        if num_required < 1:
            raise ValueError("num_required must be >= 1")
        self.num_required = num_required
        self.average = average
        self._sum: Optional[np.ndarray] = None
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    @property
    def ready(self) -> bool:
        return self._count >= self.num_required

    def apply_grad(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        if self._sum is None:
            self._sum = grad.astype(np.float32, copy=True)
        else:
            if grad.shape != self._sum.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} != accumulator shape "
                    f"{self._sum.shape}"
                )
            self._sum = self._sum + grad
        self._count += 1

    def take(self) -> np.ndarray:
        """Return the aggregate and reset (the chief's take_grad)."""
        if not self.ready:
            raise RuntimeError(
                f"accumulator has {self._count}/{self.num_required} gradients"
            )
        result = self._sum
        if self.average:
            result = result / np.float32(self._count)
        self._sum = None
        self._count = 0
        return result


class SparseAccumulator:
    """Aggregates IndexedSlices gradients from ``num_required`` workers.

    ``take`` concatenates all contributions and sums duplicate indices --
    the per-element aggregation work that sparse-variable partitioning
    parallelizes (paper section 3.2).
    """

    def __init__(self, num_required: int, average: bool = False):
        if num_required < 1:
            raise ValueError("num_required must be >= 1")
        self.num_required = num_required
        self.average = average
        self._grads: List[IndexedSlices] = []

    @property
    def count(self) -> int:
        return len(self._grads)

    @property
    def ready(self) -> bool:
        return len(self._grads) >= self.num_required

    def apply_grad(self, grad: IndexedSlices) -> None:
        if not isinstance(grad, IndexedSlices):
            raise TypeError(
                f"SparseAccumulator expects IndexedSlices, got {type(grad)}"
            )
        if self._grads and grad.dense_shape != self._grads[0].dense_shape:
            raise ValueError("all gradients must share dense_shape")
        self._grads.append(grad.copy())

    def take(self) -> IndexedSlices:
        if not self.ready:
            raise RuntimeError(
                f"accumulator has {self.count}/{self.num_required} gradients"
            )
        combined = concat_slices(self._grads).combine()
        if self.average:
            combined = combined.scale(1.0 / len(self._grads))
        self._grads = []
        return combined


def merge_shards(shards: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate row-range shards back into the full variable.

    The inverse of :func:`split_rows`: shards are contiguous row ranges in
    partition order, so a plain axis-0 concatenation reconstructs the
    original array bit-for-bit.  Trailing dimensions and dtypes must agree.
    """
    if not shards:
        raise ValueError("merge_shards needs at least one shard")
    arrays = [np.asarray(s) for s in shards]
    first = arrays[0]
    for i, a in enumerate(arrays[1:], start=1):
        if a.shape[1:] != first.shape[1:]:
            raise ValueError(
                f"shard {i} has row shape {a.shape[1:]}, expected "
                f"{first.shape[1:]}"
            )
        if a.dtype != first.dtype:
            raise ValueError(
                f"shard {i} has dtype {a.dtype}, expected {first.dtype}"
            )
    return np.concatenate(arrays, axis=0)


def split_rows(full: np.ndarray, offsets: Sequence[int]) -> List[np.ndarray]:
    """Split *full* into contiguous row-range shards at *offsets*.

    ``offsets`` is the ``[0, ..., rows]`` boundary list a
    :class:`~repro.graph.variables.PartitionedVariable` carries; shard
    ``p`` receives rows ``offsets[p]:offsets[p+1]``.  Together with
    :func:`merge_shards` this is the bit-exact re-sharding primitive the
    elastic runtime uses when a rescale changes the partition count.
    """
    full = np.asarray(full)
    offsets = [int(o) for o in offsets]
    if (len(offsets) < 2 or offsets[0] != 0 or offsets[-1] != full.shape[0]
            or any(lo > hi for lo, hi in zip(offsets, offsets[1:]))):
        raise ValueError(
            f"offsets {offsets} must be monotone, start at 0, and end at "
            f"the row count {full.shape[0]}"
        )
    return [full[lo:hi].copy() for lo, hi in zip(offsets, offsets[1:])]


def place_variables(
    sizes: Sequence[Tuple[str, int]],
    num_servers: int,
) -> Dict[str, int]:
    """Greedy balanced placement of variables onto server machines.

    Sorts by size descending and assigns each variable to the currently
    least-loaded server -- the "evenly distributes variables across
    servers" placement of paper section 4.3, which also underlies the
    balanced-PS assumption of the Table 3 transfer model.

    Args:
        sizes: (variable name, payload bytes) pairs.
        num_servers: number of server processes (one per machine).

    Returns:
        variable name -> server machine index.
    """
    if num_servers < 1:
        raise ValueError("num_servers must be >= 1")
    loads = [0] * num_servers
    placement: Dict[str, int] = {}
    # Stable tie-break on name keeps placement deterministic run-to-run.
    for name, size in sorted(sizes, key=lambda kv: (-kv[1], kv[0])):
        target = min(range(num_servers), key=lambda s: (loads[s], s))
        placement[name] = target
        loads[target] += size
    return placement
