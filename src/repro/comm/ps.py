"""Parameter-server runtime pieces: accumulators and variable placement.

TensorFlow's synchronous PS training aggregates gradients in *conditional
accumulators* on the servers: each worker pushes its gradient, and once
``num_required`` gradients have arrived, the chief worker takes the
aggregate and applies the update (paper section 5, "we first place
accumulators on servers ... each accumulator handles gradients of a single
sparse variable").  These classes implement that protocol in-process.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.tensor.sparse import IndexedSlices, concat_slices


class DenseAccumulator:
    """Sums dense gradients from ``num_required`` workers."""

    def __init__(self, num_required: int, average: bool = False):
        if num_required < 1:
            raise ValueError("num_required must be >= 1")
        self.num_required = num_required
        self.average = average
        self._sum: Optional[np.ndarray] = None
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    @property
    def ready(self) -> bool:
        return self._count >= self.num_required

    def apply_grad(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        if self._sum is None:
            self._sum = grad.astype(np.float32, copy=True)
        else:
            if grad.shape != self._sum.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} != accumulator shape "
                    f"{self._sum.shape}"
                )
            self._sum = self._sum + grad
        self._count += 1

    def take(self) -> np.ndarray:
        """Return the aggregate and reset (the chief's take_grad)."""
        if not self.ready:
            raise RuntimeError(
                f"accumulator has {self._count}/{self.num_required} gradients"
            )
        result = self._sum
        if self.average:
            result = result / np.float32(self._count)
        self._sum = None
        self._count = 0
        return result


class SparseAccumulator:
    """Aggregates IndexedSlices gradients from ``num_required`` workers.

    ``take`` concatenates all contributions and sums duplicate indices --
    the per-element aggregation work that sparse-variable partitioning
    parallelizes (paper section 3.2).
    """

    def __init__(self, num_required: int, average: bool = False):
        if num_required < 1:
            raise ValueError("num_required must be >= 1")
        self.num_required = num_required
        self.average = average
        self._grads: List[IndexedSlices] = []

    @property
    def count(self) -> int:
        return len(self._grads)

    @property
    def ready(self) -> bool:
        return len(self._grads) >= self.num_required

    def apply_grad(self, grad: IndexedSlices) -> None:
        if not isinstance(grad, IndexedSlices):
            raise TypeError(
                f"SparseAccumulator expects IndexedSlices, got {type(grad)}"
            )
        if self._grads and grad.dense_shape != self._grads[0].dense_shape:
            raise ValueError("all gradients must share dense_shape")
        self._grads.append(grad.copy())

    def take(self) -> IndexedSlices:
        if not self.ready:
            raise RuntimeError(
                f"accumulator has {self.count}/{self.num_required} gradients"
            )
        combined = concat_slices(self._grads).combine()
        if self.average:
            combined = combined.scale(1.0 / len(self._grads))
        self._grads = []
        return combined


def place_variables(
    sizes: Sequence[Tuple[str, int]],
    num_servers: int,
) -> Dict[str, int]:
    """Greedy balanced placement of variables onto server machines.

    Sorts by size descending and assigns each variable to the currently
    least-loaded server -- the "evenly distributes variables across
    servers" placement of paper section 4.3, which also underlies the
    balanced-PS assumption of the Table 3 transfer model.

    Args:
        sizes: (variable name, payload bytes) pairs.
        num_servers: number of server processes (one per machine).

    Returns:
        variable name -> server machine index.
    """
    if num_servers < 1:
        raise ValueError("num_servers must be >= 1")
    loads = [0] * num_servers
    placement: Dict[str, int] = {}
    # Stable tie-break on name keeps placement deterministic run-to-run.
    for name, size in sorted(sizes, key=lambda kv: (-kv[1], kv[0])):
        target = min(range(num_servers), key=lambda s: (loads[s], s))
        placement[name] = target
        loads[target] += size
    return placement
