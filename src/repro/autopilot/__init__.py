"""Online adaptive replanning: measure -> refit -> decide -> migrate.

The autopilot closes the loop the paper's offline Equation-1 search
leaves open: it meters the live run through Transcript deltas
(:class:`TelemetryMonitor`), keeps the cost model and profile calibrated
from clean telemetry windows, re-prices the candidate space every window
(:class:`Planner`), and live-migrates the fleet through the atomic
``ElasticRunner.rescale`` when a candidate's predicted goodput clears
the hysteresis margin (:class:`AutopilotController`).
"""

from repro.autopilot.controller import (
    AutopilotController,
    Decision,
    HysteresisGovernor,
)
from repro.autopilot.planner import (
    PlanCandidate,
    Planner,
    Proposal,
    derive_profile,
)
from repro.autopilot.telemetry import (
    TelemetryMonitor,
    TelemetryWindow,
    plane_of,
)
from repro.core.config import AutopilotConfig

__all__ = [
    "AutopilotConfig",
    "AutopilotController",
    "Decision",
    "HysteresisGovernor",
    "PlanCandidate",
    "Planner",
    "Proposal",
    "TelemetryMonitor",
    "TelemetryWindow",
    "derive_profile",
    "plane_of",
]
