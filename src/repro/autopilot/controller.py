"""The autopilot controller: measure -> refit -> decide -> migrate.

:class:`AutopilotController` wraps an :class:`~repro.core.elastic
.ElasticRunner` and closes the loop the static Equation-1 search leaves
open.  Every ``window_steps`` steps it

1. **measures** -- folds the steps' Transcript deltas into a
   :class:`~repro.autopilot.telemetry.TelemetryWindow`;
2. **refits** -- recalibrates the cost model
   (:func:`~repro.cluster.costmodel.fit_from_telemetry`) and the
   profile's compute term
   (:func:`~repro.cluster.simulator.calibrate_gpu_time`) from *clean*
   windows only;
3. **decides** -- asks the :class:`~repro.autopilot.planner.Planner`
   whether any candidate beats the incumbent by the hysteresis margin
   under the currently-measured degradation state;
4. **migrates** -- executes the proposal through the atomic
   ``ElasticRunner.rescale`` (a failure rolls the fleet back and backs
   the controller off).

Every decision lands in ``decision_log`` *and* as an ``autopilot/*``
Transcript note, so the byte-level record carries the control timeline
that produced it.  The :class:`HysteresisGovernor` enforces the
no-flapping contract: no migration during a cooldown, and no return to
the plan just replaced for twice the cooldown.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set

from repro.autopilot.planner import (
    PlanCandidate,
    Planner,
    Proposal,
    derive_profile,
)
from repro.autopilot.telemetry import TelemetryMonitor, TelemetryWindow
from repro.cluster.costmodel import (
    CostModel,
    DEFAULT_COST_MODEL,
    fit_from_telemetry,
)
from repro.cluster.faults import WorkerFailureError
from repro.cluster.simulator import calibrate_gpu_time
from repro.core.config import (
    AutopilotConfig,
    CommConfig,
    ElasticConfig,
    ParallaxConfig,
    graph_plan_builder,
)
from repro.core.runner import IterationResult

#: GraphSyncPlan name -> config architecture.
_PLAN_ARCHITECTURES = {"hybrid": "hybrid", "ps": "ps", "opt_ps": "opt_ps",
                       "horovod": "ar"}


@dataclass
class Decision:
    """One controller decision, as recorded in ``decision_log``."""

    window: int
    iteration: int
    action: str  # "migrate" | "rollback" | "backoff" | "blocked" | "hold"
    incumbent: str
    candidate: Optional[str] = None
    gain: Optional[float] = None
    reason: str = ""
    wall_time: float = 0.0


class HysteresisGovernor:
    """Cooldown/backoff state machine behind the no-flapping contract.

    Windows are the clock.  After a migration at window *w* no further
    migration is admitted before ``w + cooldown`` and the replaced plan
    may not return before ``w + 2 * cooldown``; a failed or
    non-improving migration grows the cooldown by ``backoff_factor``
    (capped at ``max_backoff_windows``) and bans the offending candidate
    for two grown cooldowns.  A later *successful* migration resets the
    backoff.
    """

    def __init__(self, config: AutopilotConfig):
        self.config = config
        self._cooldown = float(config.cooldown_windows)
        self._resume_at = 0
        self._banned_until: Dict[str, int] = {}

    @property
    def current_cooldown(self) -> int:
        return int(round(self._cooldown))

    def in_cooldown(self, window: int) -> bool:
        return window < self._resume_at

    def banned(self, window: int) -> Set[str]:
        return {label for label, until in self._banned_until.items()
                if window < until}

    def migrated(self, window: int, replaced_label: str) -> None:
        self._cooldown = float(self.config.cooldown_windows)
        cooldown = self.current_cooldown
        self._resume_at = window + 1 + cooldown
        self._banned_until[replaced_label] = window + 1 + 2 * cooldown

    def failed(self, window: int, label: str) -> None:
        self._cooldown = min(float(self.config.max_backoff_windows),
                             max(1.0, self._cooldown)
                             * self.config.backoff_factor)
        cooldown = self.current_cooldown
        self._banned_until[label] = window + 1 + 2 * cooldown
        self._resume_at = window + 1 + cooldown


class AutopilotController:
    """Online adaptive replanning over a live elastic runner.

    Drive training through :meth:`step` (or :meth:`run`, the
    fault-recovering loop); the controller meters every step, refits its
    models once per telemetry window, and live-migrates the fleet
    through ``ElasticRunner.rescale`` when the planner predicts a
    goodput win past the hysteresis margin.
    """

    def __init__(
        self,
        runner,
        config: Optional[AutopilotConfig] = None,
        *,
        base_config: Optional[ParallaxConfig] = None,
        cost: Optional[CostModel] = None,
        alphas: Optional[Dict[str, float]] = None,
    ):
        from repro.core.elastic import ElasticRunner

        if not isinstance(runner, ElasticRunner):
            raise TypeError(
                "autopilot requires an ElasticRunner: rescale is the "
                "migration primitive"
            )
        self.runner = runner
        runner_config = getattr(runner, "config", None)
        if config is None:
            config = (runner_config.autopilot if runner_config is not None
                      else AutopilotConfig(enabled=True))
        self.config = config
        self.base_config = (base_config if base_config is not None
                            else runner_config if runner_config is not None
                            else self._infer_base_config())
        self.base_cost = cost if cost is not None else DEFAULT_COST_MODEL
        self.monitor = TelemetryMonitor(config.window_steps)
        self.planner = Planner(
            config, runner.cluster, self.base_cost,
            sparse_as_dense_threshold=(
                self.base_config.sparse_as_dense_threshold),
        )
        if alphas is None:
            alphas = getattr(runner, "measured_alphas", None)
        self.profile = derive_profile(runner.model, alphas=alphas)
        self.incumbent = self._incumbent_from_plan()
        self.governor = HysteresisGovernor(config)
        self.decision_log: List[Decision] = []
        self._overrides_for = getattr(runner, "plan_overrides_for", None)
        self._calibrated = False
        self._bytes_per_step = 0.0
        self._premigration_sps: Optional[float] = None

    # -- construction helpers -------------------------------------------
    def _infer_base_config(self) -> ParallaxConfig:
        """A ParallaxConfig matching a hand-built runner's live plan."""
        plan = self.runner.plan
        architecture = _PLAN_ARCHITECTURES.get(plan.name, "hybrid")
        comm = CommConfig(
            fusion=bool(getattr(plan, "fusion", False)),
            fusion_buffer_mb=float(getattr(plan, "fusion_buffer_mb", 4.0)
                                   or 4.0),
            compression=getattr(plan, "compression", None),
            compression_ratio=float(getattr(plan, "compression_ratio", 0.1)
                                    or 0.1),
        )
        return ParallaxConfig(
            architecture=architecture,
            search_partitions=False,
            comm=comm,
            elastic=ElasticConfig(
                enabled=True,
                checkpoint_every=self.runner.checkpoint_every,
                fault_plan=self.runner.fault_plan,
                emulate_nic_bw=self.runner.emulate_nic_bw,
            ),
            autopilot=self.config,
        )

    def _incumbent_from_plan(self) -> PlanCandidate:
        plan = self.runner.plan
        return PlanCandidate(
            architecture=_PLAN_ARCHITECTURES.get(plan.name,
                                                 self.base_config
                                                 .architecture),
            fusion=bool(getattr(plan, "fusion", False)),
            fusion_buffer_mb=float(getattr(plan, "fusion_buffer_mb", 4.0)
                                   or 4.0),
            compression=getattr(plan, "compression", None),
            compression_ratio=float(getattr(plan, "compression_ratio", 0.1)
                                    or 0.1),
            num_machines=self.runner.cluster.num_machines,
        )

    def _builder_for(self, candidate: PlanCandidate):
        collective = candidate.architecture in ("hybrid", "ar")
        cfg = replace(
            self.base_config,
            architecture=candidate.architecture,
            comm=replace(
                self.base_config.comm,
                fusion=candidate.fusion,
                fusion_buffer_mb=candidate.fusion_buffer_mb,
                compression=candidate.compression if collective else None,
                compression_ratio=candidate.compression_ratio,
            ),
        )
        return graph_plan_builder(cfg, self._overrides_for)

    # -- the decision loop ----------------------------------------------
    def step(self, iteration: int) -> IterationResult:
        """One metered training step; may close a window and migrate."""
        runner = self.runner
        cursor = runner.transcript.cursor()
        totals = getattr(runner.backend, "serialization_totals", None)
        before = dict(totals) if totals else {}
        try:
            result = runner.step(iteration)
        except WorkerFailureError:
            self.monitor.mark_fault("fault/worker_kill")
            raise
        transfers, events = runner.transcript.since(cursor)
        totals = getattr(runner.backend, "serialization_totals", None)
        counters = {}
        if totals:
            for key, value in totals.items():
                delta = value - before.get(key, 0)
                if delta:
                    counters[key] = delta
        window = self.monitor.observe_step(
            iteration, result.wall_time, transfers, events,
            counters=counters,
            num_machines=runner.cluster.num_machines,
        )
        if window is not None:
            self._on_window(window, iteration)
        return result

    def run(self, num_iterations: int, start_iteration: int = 0,
            shrink_on_failure: bool = False) -> List[IterationResult]:
        """The fault-recovering loop of ``run_elastic``, metered.

        Identical checkpoint/recovery semantics -- each step just routes
        through :meth:`step` so the controller sees every iteration.
        """
        runner = self.runner
        results: List[IterationResult] = []
        end = start_iteration + num_iterations
        runner.checkpoint(start_iteration)
        i = start_iteration
        while i < end:
            try:
                result = self.step(i)
            except WorkerFailureError as failure:
                runner._recover(failure, shrink=shrink_on_failure)
                del results[runner._checkpoint_iteration - start_iteration:]
                i = runner._checkpoint_iteration
                continue
            results.append(result)
            i += 1
            if (i - start_iteration) % runner.checkpoint_every == 0:
                runner.checkpoint(i)
        return results

    def _on_window(self, window: TelemetryWindow, iteration: int) -> None:
        self._refit(window, iteration)
        if self._premigration_sps is not None:
            self._check_improvement(window, iteration)
        if self.governor_blocked(window, iteration):
            return
        if not self._calibrated:
            self._log_decision(Decision(
                window=window.index, iteration=iteration, action="hold",
                incumbent=self.incumbent.label,
                reason="no clean window measured yet"))
            return
        next_iteration = iteration + 1
        degradations = self.monitor.active_degradations(next_iteration)
        remaining = self.monitor.remaining_degraded_steps(
            next_iteration, self.incumbent.num_machines)
        proposal = self.planner.propose(
            self.profile, self.incumbent,
            num_partitions=self.runner.num_partitions,
            measured_network_bytes=self._bytes_per_step,
            degradations=degradations,
            emulate_nic_bw=self.runner.emulate_nic_bw,
            remaining_degraded_steps=remaining,
            banned=self.governor.banned(window.index),
        )
        if proposal is None:
            self._log_decision(Decision(
                window=window.index, iteration=iteration, action="hold",
                incumbent=self.incumbent.label,
                reason="no candidate beats the incumbent past hysteresis"))
            return
        self._execute(proposal, window, iteration)

    def governor_blocked(self, window: TelemetryWindow,
                         iteration: int) -> bool:
        """Record and report a cooldown block, if one is active."""
        if not self.governor.in_cooldown(window.index):
            return False
        self._log_decision(Decision(
            window=window.index, iteration=iteration, action="blocked",
            incumbent=self.incumbent.label,
            reason=f"cooldown ({self.governor.current_cooldown} windows)"))
        return True

    def _refit(self, window: TelemetryWindow, iteration: int) -> None:
        """Keep the cost model and profile current (clean windows only)."""
        cost = fit_from_telemetry(self.monitor.windows, base=self.base_cost)
        self.planner.update_cost(cost)
        clean = self.monitor.last_clean_window()
        if clean is None:
            return
        cluster = self.planner.cluster.scaled(self.incumbent.num_machines)
        plan = self.planner.sync_plan(self.incumbent, self.profile,
                                      self.runner.num_partitions)
        self.profile = calibrate_gpu_time(
            self.profile, plan, cluster, clean.mean_step_time, cost)
        self._bytes_per_step = clean.network_bytes / max(1, clean.steps)
        self._calibrated = True
        self.runner.transcript.note(
            "autopilot/refit", iteration=iteration,
            window=window.index,
            gpu_time_per_iter=self.profile.gpu_time_per_iter,
            bytes_per_step=self._bytes_per_step,
            clean_window=clean.index,
        )

    def _check_improvement(self, window: TelemetryWindow,
                           iteration: int) -> None:
        """Back off if the last migration did not actually help.

        The first full window on the new plan must beat the measured
        steps/sec of the window that triggered the migration; otherwise
        the prediction was wrong and the candidate is banned while the
        cooldown grows.
        """
        baseline = self._premigration_sps
        self._premigration_sps = None
        if baseline is None or window.steps_per_sec > baseline:
            return
        self.governor.failed(window.index, self.incumbent.label)
        self._log_decision(Decision(
            window=window.index, iteration=iteration, action="backoff",
            incumbent=self.incumbent.label,
            candidate=self.incumbent.label,
            reason=(f"non-improving migration: {window.steps_per_sec:.2f} "
                    f"steps/s vs {baseline:.2f} before"),
        ))

    def _execute(self, proposal: Proposal, window: TelemetryWindow,
                 iteration: int) -> None:
        candidate = proposal.candidate
        builder = self._builder_for(candidate)
        new_cluster = self.planner.cluster.scaled(candidate.num_machines)
        start = time.perf_counter()
        try:
            self.runner.rescale(new_cluster, plan_builder=builder)
        except Exception as error:
            # rescale rolled the fleet back; back off and move on.
            self.governor.failed(window.index, candidate.label)
            self._log_decision(Decision(
                window=window.index, iteration=iteration, action="rollback",
                incumbent=self.incumbent.label, candidate=candidate.label,
                gain=proposal.gain,
                reason=f"migration failed: {type(error).__name__}: {error}",
                wall_time=time.perf_counter() - start,
            ))
            self.monitor.mark_fault("autopilot/rollback")
            return
        replaced = self.incumbent
        self.incumbent = candidate
        self.governor.migrated(window.index, replaced.label)
        self._premigration_sps = window.steps_per_sec
        self._log_decision(Decision(
            window=window.index, iteration=iteration, action="migrate",
            incumbent=replaced.label, candidate=candidate.label,
            gain=proposal.gain,
            reason=(f"predicted {proposal.predicted_units_per_sec:.1f} "
                    f"units/s vs {proposal.incumbent_units_per_sec:.1f} "
                    f"over {proposal.horizon_steps} steps"),
            wall_time=time.perf_counter() - start,
        ))

    def _log_decision(self, decision: Decision) -> None:
        self.decision_log.append(decision)
        self.runner.transcript.note(
            f"autopilot/{decision.action}",
            iteration=decision.iteration,
            window=decision.window,
            incumbent=decision.incumbent,
            candidate=decision.candidate or "",
            gain=round(decision.gain, 6) if decision.gain is not None
            else 0.0,
            reason=decision.reason,
        )

    # -- contracts -------------------------------------------------------
    @property
    def migrations(self) -> List[Decision]:
        return [d for d in self.decision_log if d.action == "migrate"]

    @property
    def no_flapping(self) -> bool:
        """The bench contract: no A->B->A inside a cooldown span.

        True iff no two migrations land within ``cooldown_windows`` of
        each other and no migration returns to the plan it replaced
        within twice the cooldown.  The governor enforces exactly this,
        so the property is a cross-check, not a hope.
        """
        cooldown = max(1, self.config.cooldown_windows)
        migrations = self.migrations
        for a, b in zip(migrations, migrations[1:]):
            if b.window - a.window <= cooldown:
                return False
            if b.candidate == a.incumbent and \
                    b.window - a.window <= 2 * cooldown:
                return False
        return True

    def decision_summary(self) -> List[Dict]:
        """JSON-ready decision log (for bench reports)."""
        return [
            {
                "window": d.window,
                "iteration": d.iteration,
                "action": d.action,
                "incumbent": d.incumbent,
                "candidate": d.candidate,
                "gain": d.gain,
                "reason": d.reason,
                "wall_time": d.wall_time,
            }
            for d in self.decision_log
        ]
