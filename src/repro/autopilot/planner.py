"""Candidate enumeration and pricing for online replanning.

The planner re-solves a small version of the paper's Equation-1 search
every telemetry window: enumerate candidate configurations (plan
family, fusion buffer, compression codec, replica count), price each
one through :func:`~repro.cluster.simulator.simulate_iteration` with the
*calibrated* profile and cost model, add the measured NIC-degradation
penalty (the exact formula the functional plane's emulation pays), and
propose a switch only when the best candidate beats the incumbent by a
hysteresis margin *and* pays back its migration cost over the decision
horizon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.baselines.horovod import horovod_plan
from repro.baselines.opt_ps import opt_ps_plan
from repro.baselines.tf_ps import tf_ps_plan
from repro.cluster.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.cluster.faults import emulated_degradation_delay
from repro.cluster.plan import SyncPlan
from repro.cluster.simulator import plan_wire_bytes, simulate_iteration, \
    simulate_rescale
from repro.cluster.spec import ClusterSpec
from repro.core.hybrid import hybrid_plan
from repro.core.transform.plan import classify_variables
from repro.nn.profiles import ModelProfile, VariableProfile

_COLLECTIVE_FAMILIES = ("hybrid", "ar")


@dataclass(frozen=True)
class PlanCandidate:
    """One point in the autopilot's configuration space."""

    architecture: str
    fusion: bool = True
    fusion_buffer_mb: float = 4.0
    compression: Optional[str] = None
    compression_ratio: float = 0.1
    num_machines: int = 1

    @property
    def label(self) -> str:
        """Compact identity used in decision logs and revert bans."""
        fusion = f"f{self.fusion_buffer_mb:g}" if self.fusion else "nofuse"
        codec = (f"{self.compression}@{self.compression_ratio:g}"
                 if self.compression else "exact")
        return f"{self.architecture}/{fusion}/{codec}/m{self.num_machines}"


@dataclass(frozen=True)
class Proposal:
    """A priced migration the planner wants the controller to execute."""

    candidate: PlanCandidate
    incumbent: PlanCandidate
    predicted_step_time: float
    incumbent_step_time: float
    predicted_units_per_sec: float
    incumbent_units_per_sec: float
    gain: float  # fractional goodput improvement over the incumbent
    migration_cost: float  # predicted downtime of the switch, seconds
    horizon_steps: int  # steps the gain was amortized over


def derive_profile(
    model,
    alphas: Optional[Dict[str, float]] = None,
    gpu_time_per_iter: float = 1e-3,
    name: str = "live",
) -> ModelProfile:
    """A :class:`ModelProfile` of the live graph, for the simulator.

    Builds one :class:`VariableProfile` per synchronized variable,
    merging partition shards back into their parent (the SyncPlan-level
    plan builders re-partition from ``num_partitions``), with sparsity
    from the static classifier and alpha from the measured values
    *alphas* when available.  ``gpu_time_per_iter`` is a placeholder --
    the controller calibrates it against measured step times before any
    pricing (:func:`~repro.cluster.simulator.calibrate_gpu_time`).
    """
    graph = model.graph
    alphas = alphas or {}
    sparse_map = classify_variables(graph)
    merged: Dict[str, Dict] = {}
    order: List[str] = []
    for var_name in graph.gradient_info:
        var = graph.variables[var_name]
        info = getattr(var, "partition_info", None)
        parent = info["parent"] if info else var_name
        entry = merged.get(parent)
        if entry is None:
            entry = merged[parent] = {
                "elements": 0, "rows": 0,
                "sparse": bool(sparse_map.get(var_name)),
                "alpha": None,
            }
            order.append(parent)
        num_elements = 1
        for dim in var.shape:
            num_elements *= int(dim)
        entry["elements"] += num_elements
        entry["rows"] += int(var.shape[0]) if var.shape else 1
        entry["sparse"] = entry["sparse"] or bool(sparse_map.get(var_name))
        if var_name in alphas:
            # measure_alpha already parent-merges, so any shard carries
            # the parent's value.
            entry["alpha"] = float(alphas[var_name])
    variables = []
    for parent in order:
        entry = merged[parent]
        alpha = entry["alpha"]
        if alpha is None or not 0.0 < alpha <= 1.0:
            alpha = 1.0
        variables.append(VariableProfile(
            name=parent,
            num_elements=entry["elements"],
            is_sparse=entry["sparse"],
            alpha=alpha if entry["sparse"] else 1.0,
            rows=entry["rows"] if entry["sparse"] else None,
        ))
    return ModelProfile(
        name=name,
        variables=variables,
        batch_per_gpu=getattr(model, "batch_size", 1),
        units_per_sample=1,
        unit="samples",
        gpu_time_per_iter=gpu_time_per_iter,
    )


class Planner:
    """Enumerates and prices candidate configurations each window."""

    def __init__(
        self,
        config,
        cluster: ClusterSpec,
        cost: CostModel = DEFAULT_COST_MODEL,
        sparse_as_dense_threshold: float = 0.95,
    ):
        self.config = config
        self.cluster = cluster  # the full fleet; candidates scale it down
        self.cost = cost
        self.sparse_as_dense_threshold = sparse_as_dense_threshold

    def update_cost(self, cost: CostModel) -> None:
        """Adopt a refitted cost model (the online calibration stage)."""
        self.cost = cost

    # -- candidate space ------------------------------------------------
    def candidates(self, incumbent: PlanCandidate) -> List[PlanCandidate]:
        """The configuration points priced against *incumbent*."""
        machine_counts = {incumbent.num_machines}
        if self.config.consider_rescale:
            lo = max(1, self.config.min_machines)
            machine_counts.update(
                range(lo, self.cluster.num_machines + 1))
        families = list(self.config.plan_families)
        if incumbent.architecture not in families:
            families.append(incumbent.architecture)
        out: List[PlanCandidate] = []
        seen = set()
        for arch in families:
            if arch in _COLLECTIVE_FAMILIES:
                fusions: Sequence[float] = self.config.fusion_buffers_mb
                codecs: Sequence[Optional[str]] = self.config.codecs
            else:
                fusions = (incumbent.fusion_buffer_mb,)
                codecs = (None,)
            for machines in sorted(machine_counts):
                for buffer_mb in fusions:
                    for codec in codecs:
                        candidate = PlanCandidate(
                            architecture=arch,
                            fusion=True,
                            fusion_buffer_mb=buffer_mb,
                            compression=codec,
                            compression_ratio=self.config.compression_ratio,
                            num_machines=machines,
                        )
                        if candidate.label not in seen:
                            seen.add(candidate.label)
                            out.append(candidate)
        if incumbent.label not in seen:
            out.append(incumbent)
        return out

    def sync_plan(self, candidate: PlanCandidate,
                  profile: ModelProfile,
                  num_partitions: int = 1) -> SyncPlan:
        """The performance-plane plan a candidate prices as."""
        if candidate.architecture == "hybrid":
            plan = hybrid_plan(
                profile, num_partitions=num_partitions,
                sparse_as_dense_threshold=self.sparse_as_dense_threshold)
        elif candidate.architecture == "ps":
            plan = tf_ps_plan(profile, num_partitions=num_partitions)
        elif candidate.architecture == "opt_ps":
            plan = opt_ps_plan(profile, num_partitions=num_partitions)
        else:
            plan = horovod_plan(profile)
        if candidate.architecture in _COLLECTIVE_FAMILIES:
            plan = plan.with_fusion(
                candidate.fusion_buffer_mb if candidate.fusion else 0)
            if candidate.compression:
                plan = plan.with_compression(candidate.compression,
                                             candidate.compression_ratio)
        return plan

    # -- pricing --------------------------------------------------------
    def propose(
        self,
        profile: ModelProfile,
        incumbent: PlanCandidate,
        *,
        num_partitions: int = 1,
        measured_network_bytes: float = 0.0,
        degradations: Iterable = (),
        emulate_nic_bw: Optional[float] = None,
        remaining_degraded_steps: int = 0,
        banned: Iterable[str] = (),
    ) -> Optional[Proposal]:
        """The best migration worth making, or None to hold.

        *profile* must already be calibrated against a clean-window
        measurement; *measured_network_bytes* is the incumbent's
        measured per-step cross-machine byte count, used to scale the
        simulator's per-candidate wire bytes onto the same footing the
        functional emulation charges.  *degradations* are the
        currently-active windows the telemetry monitor reconstructed
        from fault notes; a candidate with fewer machines escapes
        degradations scheduled on the machines it drops.
        """
        degradations = list(degradations)
        banned = set(banned)
        inc_time, inc_ups, inc_wire = self._score(
            incumbent, profile, num_partitions, None,
            degradations, emulate_nic_bw, measured_network_bytes)
        best: Optional[Tuple[PlanCandidate, float, float]] = None
        for candidate in self.candidates(incumbent):
            if candidate.label == incumbent.label:
                continue
            if candidate.label in banned:
                continue
            time_s, ups, _ = self._score(
                candidate, profile, num_partitions, inc_wire,
                degradations, emulate_nic_bw, measured_network_bytes)
            if best is None or ups > best[2]:
                best = (candidate, time_s, ups)
        if best is None or inc_ups <= 0:
            return None
        candidate, cand_time, cand_ups = best
        gain = cand_ups / inc_ups - 1.0
        if gain <= self.config.hysteresis:
            return None
        # Payback: the per-unit time saved over the horizon must exceed
        # the migration's predicted downtime.  Under an active
        # degradation the horizon is its remaining length; otherwise a
        # long-run horizon lets structural wins through.
        horizon = (remaining_degraded_steps if remaining_degraded_steps > 0
                   else self.config.window_steps * 10)
        old_cluster = self.cluster.scaled(incumbent.num_machines)
        new_cluster = self.cluster.scaled(candidate.num_machines)
        inc_plan = self.sync_plan(incumbent, profile, num_partitions)
        migration_cost = simulate_rescale(
            inc_plan, old_cluster, new_cluster, self.cost).downtime
        units = horizon * profile.units_per_iteration(old_cluster.total_gpus)
        saved = units * (1.0 / inc_ups - 1.0 / cand_ups)
        if saved <= migration_cost:
            return None
        return Proposal(
            candidate=candidate,
            incumbent=incumbent,
            predicted_step_time=cand_time,
            incumbent_step_time=inc_time,
            predicted_units_per_sec=cand_ups,
            incumbent_units_per_sec=inc_ups,
            gain=gain,
            migration_cost=migration_cost,
            horizon_steps=horizon,
        )

    def _score(
        self,
        candidate: PlanCandidate,
        profile: ModelProfile,
        num_partitions: int,
        incumbent_wire: Optional[float],
        degradations,
        emulate_nic_bw: Optional[float],
        measured_network_bytes: float,
    ) -> Tuple[float, float, float]:
        """(step time, units/sec, simulated wire bytes) for a candidate.

        The degradation penalty uses measured bytes scaled by the
        simulated candidate/incumbent wire-byte ratio: the simulator's
        absolute byte accounting (one worker's view) and the
        transcript's (every machine's flows) differ by a plan-dependent
        constant, and the ratio cancels it.
        """
        cluster = self.cluster.scaled(candidate.num_machines)
        plan = self.sync_plan(candidate, profile, num_partitions)
        breakdown = simulate_iteration(profile, plan, cluster, self.cost)
        wire = plan_wire_bytes(breakdown)
        factor = 1.0
        for d in degradations:
            if d.machine < candidate.num_machines:
                factor *= d.factor
        if incumbent_wire is None or incumbent_wire <= 0:
            degraded_bytes = measured_network_bytes or wire
        else:
            degraded_bytes = (measured_network_bytes * wire / incumbent_wire
                              if measured_network_bytes else wire)
        delay = emulated_degradation_delay(degraded_bytes, factor,
                                           emulate_nic_bw)
        time_s = breakdown.iteration_time + delay
        ups = (profile.units_per_iteration(cluster.total_gpus) / time_s
               if time_s > 0 else 0.0)
        return time_s, ups, wire
