"""Telemetry windows: the autopilot's measured view of training.

The controller wraps ``runner.step`` and folds each step's Transcript
delta -- wall time, network bytes per plane, transport serialization
counters, fault-plane notes -- into a rolling :class:`TelemetryWindow`.
A closed window is the unit of decision-making: the refit stage
calibrates the cost model from *clean* windows only (a window that
overlapped a NIC degradation, a rescale, or a worker kill is *tainted*
and excluded -- folding it in would poison later refits with constants
that describe the fault, not the system), and the planner reads the
active-degradation state the monitor reconstructs from ``fault/*``
notes.

The degradation state is measurement-driven: the monitor learns about a
``NicDegradation`` from the ``fault/nic_degraded`` note the runner
records when the window opens (which carries the factor and duration),
never by peeking at the fault plan's future.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.comm.transcript import Note, Transfer

#: Transfer-tag prefixes mapped to the plane they account to.
_PLANE_PREFIXES = (
    (("allreduce", "allgatherv", "idx:"), "collective"),
    (("edge/",), "ps"),
    (("transport/",), "transport"),
)


def plane_of(tag: str) -> str:
    """Which accounting plane a transfer tag belongs to.

    ``collective`` covers ring AllReduce / AllGatherV payloads (indices
    included), ``ps`` the cross-device graph edges (PS pushes/pulls and
    stitches), ``transport`` the multiproc message plane, ``other``
    anything new.
    """
    for prefixes, plane in _PLANE_PREFIXES:
        if tag.startswith(prefixes):
            return plane
    return "other"


@dataclass(frozen=True)
class TelemetryWindow:
    """Aggregated measurements over ``window_steps`` consecutive steps.

    ``wire_bytes`` holds cross-machine bytes per plane (see
    :func:`plane_of`); ``counters`` the transport serialization deltas
    (empty under the inproc backend); ``fault_tags`` every fault-plane
    note tag that fired or was active during the window.  ``nic_factor``
    is the worst combined degradation factor any step in the window ran
    under (1.0 = clean).
    """

    index: int
    start_iteration: int
    end_iteration: int  # exclusive
    wall_time: float
    wire_bytes: Dict[str, int] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    fault_tags: Tuple[str, ...] = ()
    nic_factor: float = 1.0

    @property
    def steps(self) -> int:
        return self.end_iteration - self.start_iteration

    @property
    def mean_step_time(self) -> float:
        return self.wall_time / max(1, self.steps)

    @property
    def steps_per_sec(self) -> float:
        return self.steps / self.wall_time if self.wall_time > 0 else 0.0

    @property
    def network_bytes(self) -> int:
        """Total cross-machine bytes, all planes."""
        return sum(self.wire_bytes.values())

    @property
    def tainted(self) -> bool:
        """Whether fault-plane activity overlapped this window.

        Tainted windows are excluded from calibration: their step times
        and counters measure the fault, not the system.
        """
        return bool(self.fault_tags) or self.nic_factor < 1.0


@dataclass(frozen=True)
class ActiveDegradation:
    """A NIC degradation learned from its ``fault/nic_degraded`` note."""

    machine: int
    factor: float
    start_iteration: int
    end_iteration: int  # exclusive

    def active_at(self, iteration: int) -> bool:
        return self.start_iteration <= iteration < self.end_iteration


class TelemetryMonitor:
    """Folds per-step observations into rolling telemetry windows."""

    def __init__(self, window_steps: int, max_windows: int = 64):
        if window_steps < 1:
            raise ValueError("window_steps must be >= 1")
        self.window_steps = window_steps
        self.max_windows = max_windows
        self.windows: List[TelemetryWindow] = []
        self._degradations: List[ActiveDegradation] = []
        self._reset_accumulators()

    def _reset_accumulators(self) -> None:
        self._start: Optional[int] = None
        self._steps = 0
        self._wall_time = 0.0
        self._wire_bytes: Dict[str, int] = {}
        self._counters: Dict[str, float] = {}
        self._fault_tags: List[str] = []
        self._nic_factor = 1.0

    def mark_fault(self, tag: str) -> None:
        """Taint the current window with an out-of-band fault event.

        Used for events the step's own transcript delta cannot carry:
        a worker kill aborts the step before its delta is read, and a
        rescale happens between steps.
        """
        if tag not in self._fault_tags:
            self._fault_tags.append(tag)

    def observe_step(
        self,
        iteration: int,
        wall_time: float,
        transfers: List[Transfer],
        events: List[Note],
        counters: Optional[Dict[str, float]] = None,
        num_machines: Optional[int] = None,
    ) -> Optional[TelemetryWindow]:
        """Fold one completed step; return the window it closed, if any.

        *transfers*/*events* are the step's Transcript delta
        (:meth:`~repro.comm.transcript.Transcript.since`); *counters*
        the transport serialization-counter delta; *num_machines* the
        fleet size the step ran on (degradations on machines outside it
        don't degrade the step).
        """
        if self._start is None:
            self._start = iteration
        for event in events:
            if event.tag == "fault/nic_degraded":
                self._degradations.append(ActiveDegradation(
                    machine=int(event.get("machine", 0)),
                    factor=float(event.get("factor", 1.0)),
                    start_iteration=event.iteration,
                    end_iteration=event.iteration
                    + int(event.get("duration", 1)),
                ))
            if (event.tag.startswith("fault/")
                    or event.tag.startswith("elastic/")):
                self.mark_fault(event.tag)
        factor = self.nic_factor(iteration, num_machines)
        if factor < 1.0:
            self.mark_fault("fault/nic_degraded")
        self._nic_factor = min(self._nic_factor, factor)
        self._steps += 1
        self._wall_time += wall_time
        for t in transfers:
            if t.src_machine != t.dst_machine:
                plane = plane_of(t.tag)
                self._wire_bytes[plane] = (self._wire_bytes.get(plane, 0)
                                           + t.nbytes)
        if counters:
            for key, value in counters.items():
                self._counters[key] = self._counters.get(key, 0.0) + value
        if self._steps < self.window_steps:
            return None
        window = TelemetryWindow(
            index=len(self.windows),
            start_iteration=self._start,
            end_iteration=iteration + 1,
            wall_time=self._wall_time,
            wire_bytes=dict(self._wire_bytes),
            counters=dict(self._counters),
            fault_tags=tuple(self._fault_tags),
            nic_factor=self._nic_factor,
        )
        self.windows.append(window)
        del self.windows[:-self.max_windows]
        self._reset_accumulators()
        return window

    # -- degradation state reconstructed from notes ---------------------
    def active_degradations(
        self, iteration: int, num_machines: Optional[int] = None,
    ) -> List[ActiveDegradation]:
        """Degradations noted as active at *iteration* on the fleet."""
        return [
            d for d in self._degradations
            if d.active_at(iteration)
            and (num_machines is None or d.machine < num_machines)
        ]

    def nic_factor(self, iteration: int,
                   num_machines: Optional[int] = None) -> float:
        """Combined degradation factor the fleet pays at *iteration*."""
        factor = 1.0
        for d in self.active_degradations(iteration, num_machines):
            factor *= d.factor
        return factor

    def remaining_degraded_steps(
        self, iteration: int, num_machines: Optional[int] = None,
    ) -> int:
        """Steps until the last currently-active degradation expires."""
        active = self.active_degradations(iteration, num_machines)
        if not active:
            return 0
        return max(d.end_iteration for d in active) - iteration

    def clean_windows(self) -> List[TelemetryWindow]:
        """The calibration-eligible (untainted) windows."""
        return [w for w in self.windows if not w.tainted]

    def last_clean_window(self) -> Optional[TelemetryWindow]:
        for window in reversed(self.windows):
            if not window.tainted:
                return window
        return None
