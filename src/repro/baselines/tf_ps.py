"""TF-PS baseline: the naive parameter-server architecture.

Models TensorFlow 1.6's ``SyncReplicasOptimizer`` setup the paper
evaluates as "TF-PS": every variable (dense and sparse alike) is stored on
parameter servers, every worker pushes its own gradient (no per-machine
local aggregation), and aggregation/update ops follow TF's default
placement rather than being colocated with their variable's server.
"""

from __future__ import annotations

from repro.cluster.plan import SyncMethod, SyncPlan, VariableAssignment
from repro.nn.profiles import ModelProfile


def tf_ps_plan(profile: ModelProfile, num_partitions: int = 1) -> SyncPlan:
    """Build the TF-PS synchronization plan.

    Args:
        profile: model to synchronize.
        num_partitions: partition count for sparse variables.  The paper
            tunes this manually for TF-PS ("we perform a manual search
            ... as the frameworks do not provide automatic search").
    """
    assignments = []
    for v in profile.variables:
        partitions = num_partitions if v.is_sparse else 1
        if v.rows is not None:
            partitions = min(partitions, v.rows)
        assignments.append(
            VariableAssignment(v, SyncMethod.PS, num_partitions=partitions)
        )
    return SyncPlan(
        name=f"tf_ps({profile.name})",
        assignments=assignments,
        local_aggregation=False,
        smart_placement=False,
    )
