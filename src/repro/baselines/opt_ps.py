"""OptPS: Parallax's optimized PS architecture (Table 4 ablation point).

Same variable placement as TF-PS, but with the two PS optimizations the
paper folds into OptPS (section 6.4): per-machine local gradient
aggregation, and smart placement of global-aggregation/update ops on the
server that owns each variable.
"""

from __future__ import annotations

from repro.cluster.plan import SyncMethod, SyncPlan, VariableAssignment
from repro.nn.profiles import ModelProfile


def opt_ps_plan(profile: ModelProfile, num_partitions: int = 1) -> SyncPlan:
    """Build the OptPS synchronization plan."""
    assignments = []
    for v in profile.variables:
        partitions = num_partitions if v.is_sparse else 1
        if v.rows is not None:
            partitions = min(partitions, v.rows)
        assignments.append(
            VariableAssignment(v, SyncMethod.PS, num_partitions=partitions)
        )
    return SyncPlan(
        name=f"opt_ps({profile.name})",
        assignments=assignments,
        local_aggregation=True,
        smart_placement=True,
    )
