"""Horovod baseline: pure collective (AR) architecture.

Horovod 0.11.2 synchronizes dense gradients with NCCL ring AllReduce and
falls back to MPI AllGatherv for IndexedSlices gradients -- the fallback
whose ``2*alpha*w*m*(N-1)`` per-machine transfer makes sparse models
collapse at scale (paper Table 3 and section 6).
"""

from __future__ import annotations

from repro.cluster.plan import SyncMethod, SyncPlan, VariableAssignment
from repro.nn.profiles import ModelProfile


def horovod_plan(profile: ModelProfile) -> SyncPlan:
    """Build the Horovod synchronization plan."""
    assignments = []
    for v in profile.variables:
        method = SyncMethod.ALLGATHERV if v.is_sparse else SyncMethod.ALLREDUCE
        assignments.append(VariableAssignment(v, method))
    return SyncPlan(
        name=f"horovod({profile.name})",
        assignments=assignments,
        local_aggregation=False,
        smart_placement=False,
    )
