"""Baseline data-parallel strategies the paper compares against.

* :func:`tf_ps_plan` -- TensorFlow's PS architecture ("TF-PS"): every
  variable lives on a parameter server; no local aggregation, no smart
  placement of aggregation/update ops.
* :func:`horovod_plan` -- Horovod's pure collective architecture:
  AllReduce for dense variables, AllGatherv for sparse ones.
* :func:`opt_ps_plan` -- Parallax's optimized PS (OptPS of Table 4):
  still PS-only, but with local aggregation and smart placement.
"""

from repro.baselines.tf_ps import tf_ps_plan
from repro.baselines.horovod import horovod_plan
from repro.baselines.opt_ps import opt_ps_plan

__all__ = ["tf_ps_plan", "horovod_plan", "opt_ps_plan"]
