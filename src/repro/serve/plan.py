"""Forward-only compiled plans over frozen weights.

Training plans fetch losses *and* a train op, so their schedules carry
vjp chains, optimizer updates, and collectives.  Serving needs none of
that.  :class:`InferenceEngine` compiles plans that fetch only forward
outputs -- ``plan_order`` never schedules an op the fetches do not
reach, so the gradient/optimizer/collective subgraphs are pruned by
construction -- then *proves* the result is grad-free by scanning the
schedule for training-only op types.  Every ``read_var`` is bound at
compile time to an immutable :class:`FrozenWeights` snapshot (no store
lookup on the hot path), and replay reuses the executor's buffer arena
and straight-line codegen, so the steady-state request path allocates
nothing per call.

The snapshot is swappable: ``FrozenWeights.swap`` replaces the whole
table behind a single attribute assignment, which is the hot-reload
primitive -- a reader sees either the old generation or the new one,
never a mix.
"""

from __future__ import annotations

import os
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.graph.executor import CompiledPlan
from repro.graph.graph import Graph, Operation, Tensor
from repro.graph.session import Session, variable_rng
from repro.serve.shard import RemoteShard, ShardRouter, routed_gather_kernel

# Collective op types, mirroring the runner/backend registries the
# accounting analysis keeps congruent.
_COLLECTIVE_TYPES = frozenset({
    "allreduce", "fused_allreduce", "allgatherv",
    "compressed_allreduce", "compressed_allgatherv",
})

# Op types that only ever appear in training schedules.  Optimizer
# kernels are caught through their ``is_update`` attr rather than by
# type, so new update ops stay covered without touching this set.
_TRAINING_ONLY = _COLLECTIVE_TYPES | frozenset({
    "vjp", "grad_compress", "local_agg", "global_agg", "group",
    "assign", "assign_sub", "scatter_sub",
})


class InferencePlanError(ValueError):
    """A fetch set or weight table unusable for forward-only serving."""


def _freeze_table(table: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
    frozen = {}
    for name, value in table.items():
        arr = np.array(value, copy=True)
        arr.setflags(write=False)
        frozen[name] = arr
    return frozen


class FrozenWeights:
    """An immutable weight snapshot behind one swappable reference.

    ``table`` maps variable name -> read-only ndarray copy.  ``swap``
    replaces the whole table in a single attribute assignment, so a
    concurrent reader observes either the old snapshot or the new one in
    full -- the snapshot-consistency contract hot reload relies on.
    """

    __slots__ = ("table", "version")

    def __init__(self, table: Mapping[str, np.ndarray]):
        self.table = _freeze_table(table)
        self.version = 0

    def swap(self, table: Mapping[str, np.ndarray]) -> None:
        self.table = _freeze_table(table)
        self.version += 1


class _FrozenStore:
    """Store facade routing stray session variable reads to the frozen
    snapshot; writes are refused -- the serving plane is read-only."""

    def __init__(self, weights: FrozenWeights):
        self._weights = weights

    def read(self, name: str) -> np.ndarray:
        try:
            return self._weights.table[name]
        except KeyError:
            raise KeyError(
                f"serving weights carry no value for variable {name!r}"
            ) from None

    def write(self, name: str, value) -> None:
        raise RuntimeError(
            f"refusing to write variable {name!r}: the serving plane is "
            "read-only; ship new weights through reload()"
        )


def weights_from_state(graph: Graph,
                       state: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Restrict a runner's ``logical_state()`` to *graph*'s variables.

    Training state carries optimizer slots and error-feedback residuals
    no forward plan reads; they are dropped here so a server can be fed
    a checkpoint verbatim.
    """
    return {name: state[name] for name in graph.variables if name in state}


def seeded_weights(graph: Graph, seed: int = 0) -> Dict[str, np.ndarray]:
    """Freshly initialized weights, bit-identical to a
    ``Session(graph, seed)`` store -- the cold-start table for a server
    with no checkpoint yet."""
    return {name: var.initial_value(variable_rng(name, seed))
            for name, var in graph.variables.items()}


Fetch = Union[Tensor, Operation, str]


class InferenceEngine:
    """Compile-once forward replay over frozen weights.

    Fetches resolve once at construction; each request batch size gets
    its own plan through the session LRU (key = fetch names + batch
    size), so the native batch size replays generated straight-line code
    with a warm arena while occasional odd-size batches neither evict
    nor perturb that steady state.  With a :class:`ShardRouter`, reads
    of router-owned shards compile to remote tokens and ``part_gather``
    to a routed kernel that fetches shard-local row sets from their
    owning workers.
    """

    def __init__(self, graph: Graph, fetches: Sequence[Fetch],
                 weights: Union[FrozenWeights, Mapping[str, np.ndarray]],
                 *, router: Optional[ShardRouter] = None,
                 plan_cache_size: int = 8):
        self.graph = graph
        self.router = router
        self.weights = (weights if isinstance(weights, FrozenWeights)
                        else FrozenWeights(weights))
        self._session = Session(graph, store=_FrozenStore(self.weights),
                                plan_cache_size=plan_cache_size)
        fetch_list = (list(fetches) if isinstance(fetches, (list, tuple))
                      else [fetches])
        self.fetches = [self._session._resolve(f) for f in fetch_list]
        self.fetch_names: Tuple[str, ...] = tuple(
            op.name for op in self.fetches)

        self.native_batch: Optional[int] = None
        plan = self._compile()
        read_names = sorted({op.attrs["variable"]
                             for op, *_ in plan.schedule
                             if op.op_type == "read_var"})
        self._routed_names = tuple(n for n in read_names if self._routed(n))
        self._local_names = tuple(n for n in read_names
                                  if not self._routed(n))
        self._check_weights(self.weights.table, self._local_names)
        # The graph's built-in batch dimension (placeholder leading dim):
        # the batch size whose replay is the zero-allocation fast path.
        # Other batch sizes recompile through ``plan_for`` with
        # batch-agnostic reshape kernels; their replay stays correct (the
        # arena's ``out=`` kernels are shape-guarded and fall back to
        # allocating forms) without perturbing the native plan.
        self.native_batch = 1
        for name in plan.placeholder_names:
            shape = self.graph.get_op(name).output.spec.shape
            if shape:
                self.native_batch = int(shape[0])
                break
        # Seed the cache under the native batch size so the first request
        # at that size starts from the already-verified plan.
        self._session.cache_plan(
            self.fetch_names + ("@serve", self.native_batch),
            lambda: plan)

    # -- compilation -----------------------------------------------------
    def plan_for(self, batch_size: int) -> CompiledPlan:
        """The compiled forward plan for one request batch size."""
        size = int(batch_size)
        key = self.fetch_names + ("@serve", size)
        return self._session.cache_plan(key, lambda: self._compile(size))

    def _routed(self, name: str) -> bool:
        return self.router is not None and name in self.router.owners

    def _specialize(self, op: Operation, batch_size: Optional[int] = None):
        if op.op_type == "read_var":
            name = op.attrs["variable"]
            if self._routed(name):
                token = RemoteShard(name)

                def remote_read(_op, _inputs, _rt, _token=token):
                    return _token

                return remote_read
            weights = self.weights

            def read(_op, _inputs, _rt, _name=name, _weights=weights):
                return _weights.table[_name]

            return read
        if op.op_type == "part_gather" and self.router is not None:
            shard_names = tuple(t.op.attrs.get("variable")
                                for t in op.inputs[:-1])
            if any(self._routed(n) for n in shard_names if n):
                return routed_gather_kernel(op, shard_names, self.router)
        if op.op_type == "reshape" and self.native_batch is not None:
            # Static reshape attrs bake the graph's native batch into the
            # leading dim; serving a different batch size through them
            # would fail.  When the reshape is batch-leading (both the
            # input spec and the target shape lead with the native
            # batch), bind a -1 leading dim instead -- bit-identical at
            # every batch size.
            shape = tuple(op.attrs["shape"])
            in_shape = tuple(op.inputs[0].spec.shape)
            if (shape and in_shape and shape[0] == self.native_batch
                    and in_shape[0] == self.native_batch):
                free_shape = (-1,) + shape[1:]

                def reshape_any_batch(_op, inputs, _rt, _shape=free_shape):
                    return np.reshape(inputs[0], _shape)

                return reshape_any_batch
        if (op.op_type == "constant" and batch_size is not None
                and self.native_batch is not None
                and batch_size != self.native_batch):
            # Batch-shaped constants (e.g. an RNN's initial state) bake
            # the native batch into their leading dim.  When every row is
            # identical -- the only case where another batch size has a
            # well-defined meaning -- prebind the value broadcast to the
            # request batch; otherwise leave the static value to fail
            # loudly rather than serve silently wrong rows.
            value = np.asarray(op.attrs["value"])
            if (value.ndim >= 1 and value.shape[0] == self.native_batch
                    and bool(np.all(value == value[:1]))):
                resized = np.ascontiguousarray(np.broadcast_to(
                    value[0], (batch_size,) + value.shape[1:]))
                resized.setflags(write=False)

                def batch_constant(_op, _inputs, _rt, _value=resized):
                    return _value

                return batch_constant
        return None

    def _compile(self, batch_size: Optional[int] = None) -> CompiledPlan:
        def specialize(op):
            return self._specialize(op, batch_size)

        plan = CompiledPlan(self.graph, self.fetches,
                            specialize_fn=specialize)
        offending = sorted({
            op.op_type for op, *_ in plan.schedule
            if op.op_type in _TRAINING_ONLY or op.attrs.get("is_update")
        })
        if offending:
            raise InferencePlanError(
                f"fetch set {self.fetch_names} is not forward-only: its "
                f"schedule executes training ops {offending}; serve "
                "model outputs, not train ops"
            )
        if os.environ.get("REPRO_VERIFY_PLANS"):
            from repro.analysis.alias import audit_buffer_plan

            findings, _stats = audit_buffer_plan(plan)
            if findings:
                raise InferencePlanError(
                    "inference plan failed the alias audit: "
                    + "; ".join(f.message for f in findings)
                )
        return plan

    def _check_weights(self, table: Mapping[str, np.ndarray],
                       names: Sequence[str]) -> None:
        problems = []
        for name in names:
            var = self.graph.variables[name]
            value = table.get(name)
            if value is None:
                problems.append(f"{name!r} is missing")
            elif tuple(np.shape(value)) != tuple(var.shape):
                problems.append(
                    f"{name!r} has shape {tuple(np.shape(value))}, the "
                    f"variable expects {tuple(var.shape)}")
        if problems:
            raise InferencePlanError(
                "serving weights do not match the graph: "
                + "; ".join(problems))

    # -- execution -------------------------------------------------------
    def run(self, feed_dict: Dict, batch_size: Optional[int] = None) -> List:
        """Replay the forward plan; returns one value per fetch."""
        if batch_size is None:
            first = next(iter(feed_dict.values()))
            shape = np.shape(first)
            batch_size = int(shape[0]) if shape else 1
        plan = self.plan_for(batch_size)
        session = self._session
        session._begin_run()
        return plan.execute(session, feed_dict)

    # -- hot reload ------------------------------------------------------
    def reload(self, weights: Mapping[str, np.ndarray]) -> int:
        """Swap in a new weight generation; returns its version.

        *weights* must cover every variable the plan reads; extra
        entries are ignored.  Routed shard rows are pushed to their
        owning workers (acknowledged) *before* the local swap, and the
        server serializes reload against batch execution, so no batch
        ever mixes generations across the route boundary.  No
        recompilation happens -- the compiled plans read through the
        swapped reference.
        """
        if isinstance(weights, FrozenWeights):
            weights = weights.table
        self._check_weights(weights, self._local_names)
        self._check_weights(weights, self._routed_names)
        if self._routed_names:
            self.router.load({name: weights[name]
                              for name in self._routed_names})
        self.weights.swap({name: weights[name]
                           for name in self._local_names})
        return self.weights.version

    @property
    def variable_names(self) -> Tuple[str, ...]:
        """Every variable the forward schedule reads (local + routed)."""
        return tuple(sorted(self._local_names + self._routed_names))
