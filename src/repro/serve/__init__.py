"""Serving plane: forward-only compiled plans under heavy traffic.

Training built everything through PR 8; this package serves it.  The
same compiled-plan machinery (executor codegen, buffer arena, mega
kernels) is specialized for inference: plans that fetch only forward
outputs schedule no gradients, optimizer updates, or collectives by
construction -- and :class:`InferenceEngine` proves it at compile time.
Variable reads bind to an immutable :class:`FrozenWeights` snapshot
that hot reload swaps atomically between batches, the
:class:`RequestBatcher` coalesces single-example requests under
``max_batch``/``max_delay_ms`` bounds, and row-partitioned embedding
shards can stay on their owning workers behind a :class:`ShardRouter`
instead of being replicated into every serving process.
"""

from repro.serve.batcher import BatcherClosed, RequestBatcher
from repro.serve.plan import (
    FrozenWeights,
    InferenceEngine,
    InferencePlanError,
    seeded_weights,
    weights_from_state,
)
from repro.serve.server import InferenceServer
from repro.serve.shard import (
    RemoteShard,
    ShardHost,
    ShardRouter,
    shard_hosts,
)

__all__ = [
    "BatcherClosed",
    "FrozenWeights",
    "InferenceEngine",
    "InferencePlanError",
    "InferenceServer",
    "RemoteShard",
    "RequestBatcher",
    "ShardHost",
    "ShardRouter",
    "seeded_weights",
    "shard_hosts",
    "weights_from_state",
]
