"""Replica sharding of partitioned embeddings over the transport planes.

Large row-partitioned tables do not have to be replicated into every
serving process.  Each shard lives with its owning worker -- a
:class:`ShardHost` thread holding the rows -- and the engine's routed
``part_gather`` kernel sends each shard-local row set there through the
existing :class:`~repro.comm.transport.Transport` contract, so the same
inmem/shm/tcp planes training uses carry serving lookups.  Row payloads
ride the transports' bulk ndarray paths; request/response keys are the
small hashable tuples the transport key discipline expects, and all
traffic to one host flows over a single request key so loads order
before subsequent lookups (a reload is visible to every later batch).
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, List, Mapping

import numpy as np

from repro.comm.transport import CONTROLLER, Transport, TransportTimeout

_REQ_KEY = ("serve_req",)


class RemoteShard:
    """Compile-time token standing in for a shard owned by another
    worker: the routed ``part_gather`` kernel receives it in place of
    the rows and routes that partition's lookups over the transport."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"RemoteShard({self.name!r})"


class ShardHost:
    """Owns one worker's shard rows and answers lookup/load requests.

    A daemon thread polls ``recv`` with a short timeout so ``stop``
    requests (or interpreter teardown) cannot strand it in a blocking
    wait.  Requests are ``("lookup", seq, name, rows)``,
    ``("load", seq, tables)``, and ``("stop", seq)``; lookups answer
    with the raw row block, loads and stops with an ack.
    """

    def __init__(self, transport: Transport, rank: int,
                 shards: Mapping[str, np.ndarray], poll_s: float = 0.05):
        self.transport = transport
        self.rank = int(rank)
        self._shards = {name: np.asarray(rows)
                        for name, rows in shards.items()}
        self._poll_s = float(poll_s)
        self._stop = False
        self.lookups = 0
        self.loads = 0
        self._thread = threading.Thread(
            target=self._serve, name=f"repro-shard-host-{rank}",
            daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while True:
            try:
                request = self.transport.recv(
                    self.rank, CONTROLLER, _REQ_KEY, timeout=self._poll_s)
            except TransportTimeout:
                if self._stop:
                    return
                continue
            kind, seq = request[0], request[1]
            if kind == "stop":
                self._stop = True
                self.transport.send(
                    self.rank, CONTROLLER, ("serve_ack", seq), True)
                return
            if kind == "load":
                self._shards.update({name: np.asarray(rows)
                                     for name, rows in request[2].items()})
                self.loads += 1
                self.transport.send(
                    self.rank, CONTROLLER, ("serve_ack", seq), True)
                continue
            # kind == "lookup": answer with the shard-local row block.
            name, rows = request[2], request[3]
            self.lookups += 1
            self.transport.send(
                self.rank, CONTROLLER, ("serve_rows", seq),
                self._shards[name][rows])

    def join(self, timeout: float = 5.0) -> None:
        self._thread.join(timeout)


class ShardRouter:
    """Controller-side client: shard name -> owning rank, plus
    synchronous lookup/load/stop calls over the transport."""

    def __init__(self, transport: Transport, owners: Mapping[str, int],
                 timeout: float = 30.0):
        self.transport = transport
        self.owners: Dict[str, int] = dict(owners)
        self.timeout = float(timeout)
        self._seq = itertools.count()
        self.lookups = 0

    def lookup(self, name: str, rows: np.ndarray) -> np.ndarray:
        """Fetch ``shard[rows]`` from the shard's owning worker."""
        seq = next(self._seq)
        rank = self.owners[name]
        self.transport.send(
            CONTROLLER, rank, _REQ_KEY,
            ("lookup", seq, name, np.asarray(rows, dtype=np.int64)))
        self.lookups += 1
        return self.transport.recv(
            CONTROLLER, rank, ("serve_rows", seq), timeout=self.timeout)

    def load(self, tables: Mapping[str, np.ndarray]) -> None:
        """Push new shard rows to their owners; blocks until every owner
        acknowledged -- a reload is not done until all shards swapped."""
        by_rank: Dict[int, dict] = {}
        for name, rows in tables.items():
            by_rank.setdefault(self.owners[name], {})[name] = rows
        pending = []
        for rank, chunk in sorted(by_rank.items()):
            seq = next(self._seq)
            self.transport.send(
                CONTROLLER, rank, _REQ_KEY, ("load", seq, chunk))
            pending.append((rank, seq))
        for rank, seq in pending:
            self.transport.recv(
                CONTROLLER, rank, ("serve_ack", seq), timeout=self.timeout)

    def stop(self) -> None:
        """Ask every distinct owning host to exit, awaiting acks."""
        pending = []
        for rank in sorted(set(self.owners.values())):
            seq = next(self._seq)
            self.transport.send(
                CONTROLLER, rank, _REQ_KEY, ("stop", seq))
            pending.append((rank, seq))
        for rank, seq in pending:
            try:
                self.transport.recv(
                    CONTROLLER, rank, ("serve_ack", seq),
                    timeout=self.timeout)
            except TransportTimeout:
                pass  # host already gone; nothing to wait for


def shard_hosts(transport: Transport, owners: Mapping[str, int],
                tables: Mapping[str, np.ndarray],
                poll_s: float = 0.05) -> List[ShardHost]:
    """One :class:`ShardHost` per owning rank, each holding its subset
    of *tables* -- the serving-side analogue of placing PS shards."""
    by_rank: Dict[int, dict] = {}
    for name, rank in owners.items():
        by_rank.setdefault(rank, {})[name] = tables[name]
    return [ShardHost(transport, rank, chunk, poll_s=poll_s)
            for rank, chunk in sorted(by_rank.items())]


def routed_gather_kernel(op, shard_names, router: ShardRouter):
    """Forward kernel for ``part_gather`` with remote shards.

    Owner routing is identical to the local kernel (``searchsorted``
    over the partition boundaries); partitions whose shard compiled to a
    :class:`RemoteShard` token fetch their shard-local row block from
    the owning worker, local partitions gather in place -- so the result
    is bit-identical to the unrouted kernel over the same table.
    """
    offsets = np.asarray(op.attrs["offsets"])
    spec = op.inputs[0].spec
    row_shape = tuple(spec.shape[1:])
    dtype = np.dtype(spec.dtype)

    def kernel(_op, inputs, _rt):
        *shards, ids = inputs
        ids_arr = np.asarray(ids)
        flat = np.asarray(ids_arr, dtype=np.int64).reshape(-1)
        owner = np.searchsorted(offsets, flat, side="right") - 1
        rows = np.empty((flat.size,) + row_shape, dtype=dtype)
        for p, shard in enumerate(shards):
            mask = owner == p
            if not mask.any():
                continue
            local = flat[mask] - offsets[p]
            if isinstance(shard, RemoteShard):
                rows[mask] = router.lookup(shard_names[p], local)
            else:
                rows[mask] = shard[local]
        return rows.reshape(tuple(ids_arr.shape) + row_shape)

    return kernel
