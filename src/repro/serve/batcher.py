"""Dynamic request batching: coalesce single-example submissions.

Small-batch replay is overhead-bound -- a batch of 8 costs barely more
than a batch of 1 through the compiled executor -- so the single
largest serving win is running fewer, fuller batches.  The batcher
implements the classic knobs: a batch launches as soon as ``max_batch``
requests are aboard, or when the oldest waiting request has been held
``max_delay_ms`` (one monotonic deadline; each queue wait gets the
remaining slice, the same discipline the transports use for ``recv``
timeouts).  ``submit`` only enqueues, so the front end never blocks on
execution; results are routed back to each requester's Future by
position.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable, List, Sequence, Tuple


class BatcherClosed(RuntimeError):
    """``submit`` after ``close``: the batcher no longer accepts work."""


_STOP = object()


class RequestBatcher:
    """Coalesces single-example requests into bounded batches.

    A daemon worker thread blocks for the first waiting request, then
    keeps the batch open for at most ``max_delay_ms`` or until
    ``max_batch`` requests are aboard, runs ``run_batch(examples)``, and
    resolves ``results[i]`` into the i-th requester's Future.  A full
    batch launches immediately and a lone request waits at most the
    delay bound, so no request starves; a ``run_batch`` failure fans out
    to every Future in the batch.  ``batch_log`` records
    ``(size, first_wait_seconds)`` per executed batch for observability
    and the property tests.
    """

    def __init__(self, run_batch: Callable[[List], Sequence],
                 max_batch: int = 8, max_delay_ms: float = 2.0):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay_ms < 0:
            raise ValueError("max_delay_ms must be >= 0")
        self.run_batch = run_batch
        self.max_batch = int(max_batch)
        self.max_delay_ms = float(max_delay_ms)
        self.batch_log: List[Tuple[int, float]] = []
        self._queue: "queue.Queue" = queue.Queue()
        self._closed = False
        self._lock = threading.Lock()
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve-batcher", daemon=True)
        self._thread.start()

    def submit(self, example) -> Future:
        """Enqueue one example; returns immediately with its Future."""
        future: Future = Future()
        with self._lock:
            # Enqueueing under the lock orders every accepted request
            # ahead of the close sentinel, so close() can flush them all.
            if self._closed:
                raise BatcherClosed("batcher is closed")
            self._queue.put((example, future, time.monotonic()))
        return future

    def close(self) -> None:
        """Stop accepting requests, flush everything queued, join."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(_STOP)
        self._thread.join()

    # -- worker ----------------------------------------------------------
    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                self._drain()
                return
            batch = [item]
            deadline = time.monotonic() + self.max_delay_ms / 1000.0
            stopping = False
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    extra = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if extra is _STOP:
                    stopping = True
                    break
                batch.append(extra)
            self._execute(batch)
            if stopping:
                self._drain()
                return

    def _drain(self) -> None:
        # Everything enqueued before the close sentinel is still
        # answered, in <= max_batch chunks -- close() loses nothing.
        batch: list = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            batch.append(item)
            if len(batch) == self.max_batch:
                self._execute(batch)
                batch = []
        if batch:
            self._execute(batch)

    def _execute(self, batch: list) -> None:
        examples = [example for example, _future, _enq in batch]
        self.batch_log.append(
            (len(batch), time.monotonic() - batch[0][2]))
        try:
            results = self.run_batch(examples)
            if len(results) != len(examples):
                raise RuntimeError(
                    f"run_batch returned {len(results)} results for "
                    f"{len(examples)} requests")
        except Exception as exc:
            for _example, future, _enq in batch:
                future.set_exception(exc)
            return
        for (_example, future, _enq), result in zip(batch, results):
            future.set_result(result)
