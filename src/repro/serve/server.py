"""The serving front end: one model, one engine, one batcher.

:class:`InferenceServer` accepts single examples (placeholder-order
tuples without the batch dimension), coalesces them through the
:class:`~repro.serve.batcher.RequestBatcher`, stacks them into one
batched feed, replays the compiled forward plan, and splits the fetched
rows back per request.  Hot reload takes the same lock batch execution
holds, so a weight swap is atomic *between* batches: every in-flight
request completes on the old generation, every later batch runs fully
on the new one -- bit-exact against a cold server restored from the
same state.
"""

from __future__ import annotations

import threading
from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro.nn.models.common import BuiltModel
from repro.serve.batcher import RequestBatcher
from repro.serve.plan import InferenceEngine, weights_from_state
from repro.serve.shard import ShardRouter


class InferenceServer:
    """Batched forward serving over a built model's graph.

    The default fetch is ``model.logits``; pass ``fetches=`` to serve
    other forward tensors.  ``submit`` never blocks on execution.  With
    ``owns_router=True`` the server also stops the router's shard hosts
    on ``close``.
    """

    def __init__(self, model: BuiltModel,
                 weights: Mapping[str, np.ndarray], *,
                 fetches=None, max_batch: int = 8,
                 max_delay_ms: float = 2.0,
                 router: Optional[ShardRouter] = None,
                 owns_router: bool = False,
                 plan_cache_size: int = 8):
        if fetches is None:
            if model.logits is None:
                raise ValueError(
                    f"model {model.name!r} has no logits tensor; pass "
                    "fetches= explicitly")
            fetches = [model.logits]
        elif not isinstance(fetches, (list, tuple)):
            fetches = [fetches]
        self.model = model
        self.engine = InferenceEngine(
            model.graph, list(fetches), weights, router=router,
            plan_cache_size=plan_cache_size)
        self._placeholders = list(model.placeholders.values())
        self._single = len(fetches) == 1
        self._owns_router = owns_router
        self._lock = threading.Lock()
        self.requests_served = 0
        self.batches_run = 0
        self.reloads = 0
        self.batcher = RequestBatcher(
            self._run_examples, max_batch=max_batch,
            max_delay_ms=max_delay_ms)

    @classmethod
    def from_runner(cls, model: BuiltModel, runner, **kwargs):
        """A server snapshotting *runner*'s current logical state -- the
        cold-restore construction hot reload is compared against."""
        weights = weights_from_state(model.graph, runner.logical_state())
        return cls(model, weights, **kwargs)

    # -- request path ----------------------------------------------------
    def submit(self, example: Sequence):
        """Enqueue one example (a tuple matching the model's placeholder
        order, without the batch dimension); returns its Future."""
        example = tuple(example)
        if len(example) != len(self._placeholders):
            raise ValueError(
                f"example has {len(example)} fields; model "
                f"{self.model.name!r} feeds {len(self._placeholders)} "
                "placeholders")
        return self.batcher.submit(example)

    def infer(self, example: Sequence, timeout: float = 30.0):
        """Submit one example and wait for its result."""
        return self.submit(example).result(timeout)

    def run_batch(self, columns: Sequence[np.ndarray]):
        """Execute one already-stacked batch (the bench/bypass path),
        serialized against hot reload like every batch."""
        feed = dict(zip(self._placeholders, columns))
        shape = np.shape(columns[0])
        batch = int(shape[0]) if shape else 1
        with self._lock:
            outs = self.engine.run(feed, batch_size=batch)
            self.batches_run += 1
        return outs[0] if self._single else outs

    def _run_examples(self, examples: List[tuple]) -> List:
        columns = tuple(np.stack(col) for col in zip(*examples))
        outs = self.run_batch(columns)
        fetched = [outs] if self._single else list(outs)
        per_request = []
        for i in range(len(examples)):
            # Copies, not views: a request's result must outlive the
            # arena-backed batch output it was sliced from.
            row = tuple(np.array(values[i]) for values in fetched)
            per_request.append(row[0] if self._single else row)
        self.requests_served += len(examples)
        return per_request

    # -- hot reload ------------------------------------------------------
    def reload(self, state: Mapping[str, np.ndarray]) -> int:
        """Swap in new weights between batches; returns the generation.

        *state* is ``logical_state()``-shaped (optimizer-slot extras are
        ignored).  Routed shards are pushed to their owners under the
        same lock, so remote and local partitions always serve the same
        generation within a batch.
        """
        weights = weights_from_state(self.model.graph, dict(state))
        with self._lock:
            version = self.engine.reload(weights)
        self.reloads += 1
        return version

    def reload_from(self, runner) -> int:
        """Hot reload from a live runner's current logical state."""
        return self.reload(runner.logical_state())

    def close(self) -> None:
        """Flush queued requests, stop the batcher (and any owned shard
        hosts)."""
        self.batcher.close()
        if self._owns_router and self.engine.router is not None:
            self.engine.router.stop()
