"""The Parallax user API: ``shard``, ``partitioner``, ``get_runner``.

Mirrors the paper's Figure 3 programming model: a user writes a
single-GPU model builder, marks input data with :func:`shard`, wraps
to-be-partitioned variables in :func:`partitioner`, and obtains a
distributed runner from :func:`get_runner` -- everything else (sparsity
classification, hybrid assignment, partition-count search, graph
transformation, placement) is automatic.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.cluster.faults import FaultPlan
from repro.cluster.spec import ClusterSpec
from repro.core.elastic import ElasticRunner
from repro.core.partition_context import partitioner, sampling_partitions
from repro.core.partitioner import PartitionSearch, SearchResult
from repro.core.runner import DistributedRunner
from repro.core.transform.plan import (
    GraphSyncPlan,
    ar_graph_plan,
    classify_variables,
    hybrid_graph_plan,
    ps_graph_plan,
)
from repro.graph.session import Session
from repro.nn.datasets import Dataset
from repro.nn.models.common import BuiltModel
from repro.tensor.sparse import IndexedSlices

__all__ = ["shard", "partitioner", "ParallaxConfig", "get_runner",
           "ElasticRunner", "FaultPlan"]


def shard(dataset: Dataset) -> Dataset:
    """Mark input data for splitting across GPUs (paper Figure 3, line 6).

    The runner gives each model replica a disjoint round-robin shard; this
    call records the user's intent and returns the dataset unchanged
    (sharding needs the replica count, which only the runner knows).
    """
    dataset._parallax_shard = True  # type: ignore[attr-defined]
    return dataset


@dataclass
class ParallaxConfig:
    """Optional knobs of ``get_runner`` (paper section 4.1).

    Attributes:
        architecture: "hybrid" (Parallax), "ps", "opt_ps", or "ar" --
            mostly for ablations; the paper's Parallax is "hybrid".
        local_aggregation: aggregate gradients per machine before pushing.
        smart_placement: colocate aggregation/update ops with their
            variable's server.
        average_dense / average_sparse: aggregation method per variable
            type (mean when True, sum when False).
        search_partitions: run the Equation-1 partition search.
        sample_iterations / sample_warmup: iterations measured (after
            discarding warmup) per sampled partition count.  The paper
            runs 100 and discards 50; tests use small values.
        max_partitions: upper bound for the search.
        sparse_as_dense_threshold: sparse variables whose *measured* alpha
            reaches this are synchronized as dense via AllReduce
            (section 3.1's near-1 refinement).  Set > 1 to disable.
        alpha_measure_batches: batches used to measure per-variable alpha
            (0 disables measurement and the threshold rule).
        fusion: pack dense AllReduce gradients into size-capped buckets
            (Horovod-style tensor fusion); bit-identical to unfused
            training, but each bucket rides one overlap-scheduled
            collective instead of one collective per variable.
        fusion_buffer_mb: fusion bucket size cap in megabytes (measured
            in on-wire bytes, so compression fits more gradient per
            bucket).
        compression: gradient compression on the collective paths --
            None (exact), "topk" (keep the ``compression_ratio``
            largest-magnitude coordinates, with a per-replica
            error-feedback residual carrying the rest forward), "fp16"
            (round-trip half-precision quantization), or "topk+fp16".
            PS-synchronized variables are unaffected; requires a
            collective architecture ("hybrid" or "ar").
        compression_ratio: fraction of elements (rows, for sparse
            gradients) top-k keeps.
        elastic: return an :class:`~repro.core.elastic.ElasticRunner`
            (supports ``rescale`` and fault-injected recovery) instead of
            a plain DistributedRunner.
        checkpoint_every: elastic checkpoint cadence -- in-memory
            recovery snapshots per this many completed iterations.
        fault_plan: optional deterministic failure schedule injected into
            every ``step`` (elastic runners recover from it;
            non-elastic runners surface ``WorkerFailureError``).
        backend: execution backend of the returned runner -- "inproc"
            (default; the sequential in-process engine) or "multiproc"
            (one OS worker process per replica, exchanging messages over
            a :class:`~repro.comm.transport.Transport`; bit-identical
            losses, real wall-clock parallelism).  The partition search
            always samples in-process.
        transport: message plane of the multiproc backend -- "shm"
            (default), "queue", or "tcp" (loopback sockets; the
            cross-host plane exercised in one process).  Requires
            ``backend="multiproc"``.
        plan_cache_size: LRU cap on compiled plans per session (distinct
            fetch signatures beyond this recompile on next use).
        verify_plans: run the static plan verifier
            (:mod:`repro.analysis`) on the transformed graph and refuse
            to train on a plan with a deadlock, collective-congruence,
            alias-soundness, or byte-accounting finding.  Off by default
            in production (verification costs a few percent of compile
            time); the test suite turns it on globally via the
            ``REPRO_VERIFY_PLANS`` environment variable.
        save_path: if set, ``runner.save()`` writes variables here by
            default (the config's "file path to save trained variables").
        seed: variable-initialization seed.
        serve_max_batch: serving plane -- most requests one batch
            coalesces (:func:`make_server` hands it to the
            :class:`~repro.serve.batcher.RequestBatcher`); a full batch
            launches immediately.
        serve_max_delay_ms: serving plane -- longest a waiting request
            is held open for batch-mates before its (possibly partial)
            batch launches.
    """

    architecture: str = "hybrid"
    local_aggregation: bool = True
    smart_placement: bool = True
    average_dense: bool = True
    average_sparse: bool = True
    search_partitions: bool = True
    sample_iterations: int = 2
    sample_warmup: int = 1
    max_partitions: int = 512
    sparse_as_dense_threshold: float = 0.95
    alpha_measure_batches: int = 2
    fusion: bool = True
    fusion_buffer_mb: float = 4.0
    compression: Optional[str] = None
    compression_ratio: float = 0.1
    elastic: bool = False
    checkpoint_every: int = 1
    fault_plan: Optional[FaultPlan] = None
    backend: str = "inproc"
    transport: Optional[str] = None
    plan_cache_size: int = 32
    verify_plans: bool = False
    save_path: Optional[str] = None
    seed: int = 0
    serve_max_batch: int = 8
    serve_max_delay_ms: float = 2.0

    def __post_init__(self):
        if self.architecture not in ("hybrid", "ps", "opt_ps", "ar"):
            raise ValueError(
                f"unknown architecture {self.architecture!r}; expected "
                "hybrid, ps, opt_ps, or ar"
            )
        if self.sample_iterations < 1:
            raise ValueError("sample_iterations must be >= 1")
        if self.sample_warmup < 0:
            raise ValueError("sample_warmup must be >= 0")
        if self.max_partitions < 1:
            raise ValueError("max_partitions must be >= 1")
        if self.alpha_measure_batches < 0:
            raise ValueError("alpha_measure_batches must be >= 0")
        if self.fusion_buffer_mb <= 0:
            raise ValueError("fusion_buffer_mb must be > 0")
        if self.compression is not None:
            from repro.comm.compression import parse_spec

            parse_spec(self.compression)  # raises on unknown specs
            if self.architecture in ("ps", "opt_ps"):
                raise ValueError(
                    "compression applies to collective synchronization; "
                    f"the {self.architecture!r} architecture has no "
                    "collective path"
                )
        if not 0.0 < self.compression_ratio <= 1.0:
            raise ValueError("compression_ratio must be in (0, 1]")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.plan_cache_size < 1:
            raise ValueError("plan_cache_size must be >= 1")
        if self.serve_max_batch < 1:
            raise ValueError("serve_max_batch must be >= 1")
        if self.serve_max_delay_ms < 0:
            raise ValueError("serve_max_delay_ms must be >= 0")
        from repro.core.backend import BACKENDS

        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of "
                f"{sorted(BACKENDS)}"
            )
        if self.transport is not None:
            from repro.core.backend import MultiprocBackend

            if self.backend != "multiproc":
                raise ValueError(
                    "transport selection requires backend='multiproc' "
                    "(the inproc engine has no message plane)"
                )
            if self.transport not in MultiprocBackend.TRANSPORTS:
                raise ValueError(
                    f"unknown transport {self.transport!r}; expected "
                    f"one of {MultiprocBackend.TRANSPORTS}"
                )
        if self.fault_plan is not None and not self.elastic:
            raise ValueError(
                "fault_plan requires elastic=True: a plain runner cannot "
                "recover from injected failures"
            )


def resolve_cluster(resource_info: Union[ClusterSpec, dict, str],
                    ) -> ClusterSpec:
    """Accept a ClusterSpec, a dict, or a JSON resource file path.

    The file format mirrors Parallax's resource description: a list of
    machines with their GPU ids, e.g.::

        {"machines": [{"hostname": "w0", "gpus": [0,1,2]},
                      {"hostname": "w1", "gpus": [0,1,2]}]}
    """
    if isinstance(resource_info, ClusterSpec):
        return resource_info
    if isinstance(resource_info, str):
        with open(resource_info) as f:
            resource_info = json.load(f)
    if not isinstance(resource_info, dict):
        raise TypeError(f"cannot interpret {resource_info!r} as resources")
    if "machines" in resource_info and isinstance(resource_info["machines"],
                                                  list):
        machines = resource_info["machines"]
        if not machines:
            raise ValueError(
                "resource description lists no machines; at least one "
                "machine with at least one GPU is required"
            )
        for i, machine in enumerate(machines):
            if (not isinstance(machine, dict)
                    or not isinstance(machine.get("gpus"), (list, tuple))):
                raise ValueError(
                    f"machine entry {i} must be a dict with a 'gpus' "
                    f"list; got {machine!r}"
                )
            if not machine["gpus"]:
                label = machine.get("hostname", f"machine {i}")
                raise ValueError(
                    f"{label!r} declares no GPUs; every machine must "
                    "list at least one"
                )
        gpu_counts = {len(m["gpus"]) for m in machines}
        if len(gpu_counts) != 1:
            raise ValueError(
                "machines must have equal GPU counts; got "
                f"{sorted(gpu_counts)}"
            )
        return ClusterSpec(
            num_machines=len(machines),
            gpus_per_machine=gpu_counts.pop(),
            nic_gbps=float(resource_info.get("nic_gbps", 100.0)),
        )
    return ClusterSpec(
        num_machines=int(resource_info.get("machines", 1)),
        gpus_per_machine=int(resource_info.get("gpus_per_machine", 1)),
        nic_gbps=float(resource_info.get("nic_gbps", 100.0)),
    )


def measure_alpha(model: BuiltModel, num_batches: int,
                  seed: int = 0) -> Dict[str, float]:
    """Measured per-variable alpha: unique rows touched / total rows.

    Runs forward+backward on a few batches of the model's own dataset and
    inspects each sparse gradient.  Shards of one partitioned variable are
    merged into their parent's alpha.
    """
    graph = model.graph
    sparse_vars = [name for name, sparse in classify_variables(graph).items()
                   if sparse]
    if not sparse_vars or num_batches < 1:
        return {}
    session = Session(graph, seed=seed)
    grad_tensors = {
        name: graph.get_op(graph.gradient_info[name]).output
        for name in sparse_vars
    }
    # parent -> (unique row ids seen per batch, total rows)
    fractions: Dict[str, List[float]] = {name: [] for name in sparse_vars}
    for b in range(num_batches):
        feed = model.feed(model.dataset.batch(model.batch_size, b))
        values = session.run([grad_tensors[n] for n in sparse_vars], feed)
        for name, value in zip(sparse_vars, values):
            if isinstance(value, IndexedSlices):
                fractions[name].append(value.alpha())
            else:
                # Statically sparse-classified, but the gradient
                # materialized dense at runtime: every row may be touched,
                # so alpha is 1 -- the strongest sparse-as-dense signal
                # (section 3.1's near-1 refinement), not an error.
                fractions[name].append(1.0)
    per_var = {name: float(np.mean(f)) for name, f in fractions.items()}

    # Merge partition shards into their parent (weighted by rows).
    merged: Dict[str, List] = {}
    for name, alpha in per_var.items():
        var = graph.variables[name]
        info = getattr(var, "partition_info", None)
        parent = info["parent"] if info else name
        rows = var.shape[0]
        merged.setdefault(parent, []).append((alpha, rows, name))
    result: Dict[str, float] = {}
    for parent, entries in merged.items():
        total_rows = sum(rows for _, rows, _ in entries)
        weighted = sum(alpha * rows for alpha, rows, _ in entries)
        parent_alpha = weighted / total_rows
        for _, _, name in entries:
            result[name] = parent_alpha
    return result


def _make_plan(graph, config: ParallaxConfig,
               sparse_as_dense: Dict[str, bool]) -> GraphSyncPlan:
    if config.architecture == "hybrid":
        return hybrid_graph_plan(
            graph,
            local_aggregation=config.local_aggregation,
            smart_placement=config.smart_placement,
            average_dense=config.average_dense,
            average_sparse=config.average_sparse,
            sparse_as_dense=sparse_as_dense,
            fusion=config.fusion,
            fusion_buffer_mb=config.fusion_buffer_mb,
            compression=config.compression,
            compression_ratio=config.compression_ratio,
        )
    if config.architecture == "ps":
        return ps_graph_plan(graph, local_aggregation=False,
                             smart_placement=False,
                             average_dense=config.average_dense,
                             average_sparse=config.average_sparse)
    if config.architecture == "opt_ps":
        return ps_graph_plan(graph, local_aggregation=True,
                             smart_placement=True,
                             average_dense=config.average_dense,
                             average_sparse=config.average_sparse,
                             name="opt_ps")
    return ar_graph_plan(graph, average_dense=config.average_dense,
                         average_sparse=config.average_sparse,
                         fusion=config.fusion,
                         fusion_buffer_mb=config.fusion_buffer_mb,
                         compression=config.compression,
                         compression_ratio=config.compression_ratio)


def _partition_bounds(model: BuiltModel, config: ParallaxConfig) -> int:
    """Largest partition count any partitioner-scoped variable allows."""
    pvars = model.graph.get_collection("partitioned_variables")
    if not pvars:
        return 1
    max_rows = min(p.full_shape[0] for p in pvars)
    return max(1, min(config.max_partitions, max_rows))


def get_runner(
    model_builder: Callable[[], BuiltModel],
    resource_info: Union[ClusterSpec, dict, str],
    config: Optional[ParallaxConfig] = None,
) -> DistributedRunner:
    """Automatically parallelize a single-GPU model (Figure 3, line 19).

    Args:
        model_builder: zero-argument callable building the single-GPU
            graph -- including ``gradients`` and ``opt.update`` -- and
            returning a :class:`BuiltModel`.  Variables created inside a
            ``parallax.partitioner()`` scope within the builder are
            partitioned with the searched count.
        resource_info: cluster description (ClusterSpec, dict, or a JSON
            resource file path).
        config: optional :class:`ParallaxConfig`.

    Returns:
        A :class:`DistributedRunner`; its ``partition_search`` attribute
        records the Equation-1 search when one ran.
    """
    cluster = resolve_cluster(resource_info)
    cfg = config if config is not None else ParallaxConfig()

    def build(num_partitions: int) -> BuiltModel:
        with sampling_partitions(num_partitions):
            model = model_builder()
        if not model.graph.gradient_info:
            raise ValueError(
                "model builder must call gradients() and opt.update() on "
                "the single-GPU graph (see paper Figure 3)"
            )
        return model

    initial = max(1, cluster.num_machines)
    probe = build(initial)

    # Sparse-as-dense refinement from measured alpha (section 3.1).
    sparse_as_dense: Dict[str, bool] = {}
    if (cfg.alpha_measure_batches > 0
            and cfg.sparse_as_dense_threshold <= 1.0
            and cfg.architecture == "hybrid"):
        alphas = measure_alpha(probe, cfg.alpha_measure_batches,
                               seed=cfg.seed)
        sparse_as_dense = {
            name: alpha >= cfg.sparse_as_dense_threshold
            for name, alpha in alphas.items()
        }

    # The measured decision attaches to the *parent* variable, and is
    # re-keyed onto each graph's own shard names: a model rebuilt at a
    # different partition count (the Equation-1 search, elastic re-shard
    # rescales) applies the same classification to every shard instead
    # of silently dropping overrides whose names no longer exist.
    def _parent_name(graph, name: str) -> str:
        info = getattr(graph.variables[name], "partition_info", None)
        return info["parent"] if info else name

    parent_overrides = {
        _parent_name(probe.graph, name): flag
        for name, flag in sparse_as_dense.items()
    }

    def overrides_for(graph) -> Dict[str, bool]:
        return {
            name: parent_overrides[_parent_name(graph, name)]
            for name in graph.variables
            if _parent_name(graph, name) in parent_overrides
        }

    search_result: Optional[SearchResult] = None
    best_partitions = initial
    max_partitions = _partition_bounds(probe, cfg)
    uses_ps = cfg.architecture in ("hybrid", "ps", "opt_ps")
    if cfg.search_partitions and uses_ps and max_partitions > 1:

        def measure(num_partitions: int) -> float:
            model = build(num_partitions)
            plan = _make_plan(model.graph, cfg, overrides_for(model.graph))
            # The runner compiles its step fetches once (in __init__), so
            # every sampled iteration -- warmup included -- replays the
            # same CompiledPlan; the measurement sees steady-state
            # execution, not per-iteration graph interpretation.
            runner = DistributedRunner(model, cluster, plan, seed=cfg.seed)
            total = cfg.sample_warmup + cfg.sample_iterations
            times = [runner.step(i).wall_time for i in range(total)]
            return float(np.mean(times[cfg.sample_warmup:]))

        search = PartitionSearch(measure, initial=initial,
                                 max_partitions=max_partitions)
        search_result = search.run()
        best_partitions = search_result.best_partitions

    final_model = (probe if best_partitions == initial
                   else build(best_partitions))
    plan = _make_plan(final_model.graph, cfg,
                      overrides_for(final_model.graph))
    backend = cfg.backend
    if cfg.transport is not None:
        from repro.core.backend import MultiprocBackend

        # A configured instance; make_backend passes it through and
        # elastic rescales clone it with .fresh(), so the transport
        # choice survives every migration.
        backend = MultiprocBackend(transport=cfg.transport)
    if cfg.elastic:
        runner: DistributedRunner = ElasticRunner(
            final_model, cluster, plan,
            model_builder=model_builder,
            plan_builder=lambda graph: _make_plan(graph, cfg,
                                                  overrides_for(graph)),
            checkpoint_every=cfg.checkpoint_every,
            fault_plan=cfg.fault_plan,
            seed=cfg.seed,
            backend=backend,
            plan_cache_size=cfg.plan_cache_size,
            verify_plans=True if cfg.verify_plans else None,
        )
    else:
        runner = DistributedRunner(
            final_model, cluster, plan,
            seed=cfg.seed, backend=backend,
            plan_cache_size=cfg.plan_cache_size,
            verify_plans=True if cfg.verify_plans else None)
    runner.partition_search = search_result
    runner.config = cfg
    if cfg.save_path:
        runner.default_save_path = cfg.save_path
    return runner


def make_server(model, config: Optional[ParallaxConfig] = None, *,
                runner=None, state=None, router=None, fetches=None):
    """A ready :class:`~repro.serve.server.InferenceServer` for *model*
    under *config*'s serving knobs.

    Weights come from (in priority order) a live *runner*'s
    ``logical_state()``, an explicit *state* mapping, or a fresh
    seeded initialization from ``config.seed`` -- the same values a
    ``Session(graph, seed)`` would start from.  Pass *router* to serve
    row-partitioned embeddings from their owning workers instead of the
    local table.
    """
    from repro.serve import (
        InferenceServer,
        seeded_weights,
        weights_from_state,
    )

    cfg = config if config is not None else ParallaxConfig()
    if runner is not None:
        state = runner.logical_state()
    weights = (weights_from_state(model.graph, state)
               if state is not None
               else seeded_weights(model.graph, cfg.seed))
    return InferenceServer(
        model, weights,
        fetches=fetches,
        max_batch=cfg.serve_max_batch,
        max_delay_ms=cfg.serve_max_delay_ms,
        router=router,
        plan_cache_size=cfg.plan_cache_size,
    )
