"""The Parallax user API: ``shard``, ``partitioner``, ``get_runner``.

Mirrors the paper's Figure 3 programming model: a user writes a
single-GPU model builder, marks input data with :func:`shard`, wraps
to-be-partitioned variables in :func:`partitioner`, and obtains a
distributed runner from :func:`get_runner` -- everything else (sparsity
classification, hybrid assignment, partition-count search, graph
transformation, placement) is automatic.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.cluster.faults import FaultPlan
from repro.cluster.spec import ClusterSpec
from repro.core.config import (
    AutopilotConfig,
    CommConfig,
    ElasticConfig,
    ParallaxConfig,
    ServeConfig,
    graph_plan_builder,
)
from repro.core.elastic import ElasticRunner
from repro.core.partition_context import partitioner, sampling_partitions
from repro.core.partitioner import PartitionSearch, SearchResult
from repro.core.runner import DistributedRunner, IterationResult
from repro.core.transform.plan import classify_variables
from repro.graph.session import Session
from repro.nn.datasets import Dataset
from repro.nn.models.common import BuiltModel
from repro.tensor.sparse import IndexedSlices

__all__ = ["shard", "partitioner", "auto_parallelize", "Runner",
           "ParallaxConfig", "CommConfig", "ElasticConfig", "ServeConfig",
           "AutopilotConfig", "get_runner", "make_server", "ElasticRunner",
           "FaultPlan"]


def shard(dataset: Dataset) -> Dataset:
    """Mark input data for splitting across GPUs (paper Figure 3, line 6).

    The runner gives each model replica a disjoint round-robin shard; this
    call records the user's intent and returns the dataset unchanged
    (sharding needs the replica count, which only the runner knows).
    """
    dataset._parallax_shard = True  # type: ignore[attr-defined]
    return dataset


def resolve_cluster(resource_info: Union[ClusterSpec, dict, str],
                    ) -> ClusterSpec:
    """Accept a ClusterSpec, a dict, or a JSON resource file path.

    The file format mirrors Parallax's resource description: a list of
    machines with their GPU ids, e.g.::

        {"machines": [{"hostname": "w0", "gpus": [0,1,2]},
                      {"hostname": "w1", "gpus": [0,1,2]}]}
    """
    if isinstance(resource_info, ClusterSpec):
        return resource_info
    if isinstance(resource_info, str):
        with open(resource_info) as f:
            resource_info = json.load(f)
    if not isinstance(resource_info, dict):
        raise TypeError(f"cannot interpret {resource_info!r} as resources")
    if "machines" in resource_info and isinstance(resource_info["machines"],
                                                  list):
        machines = resource_info["machines"]
        if not machines:
            raise ValueError(
                "resource description lists no machines; at least one "
                "machine with at least one GPU is required"
            )
        for i, machine in enumerate(machines):
            if (not isinstance(machine, dict)
                    or not isinstance(machine.get("gpus"), (list, tuple))):
                raise ValueError(
                    f"machine entry {i} must be a dict with a 'gpus' "
                    f"list; got {machine!r}"
                )
            if not machine["gpus"]:
                label = machine.get("hostname", f"machine {i}")
                raise ValueError(
                    f"{label!r} declares no GPUs; every machine must "
                    "list at least one"
                )
        gpu_counts = {len(m["gpus"]) for m in machines}
        if len(gpu_counts) != 1:
            raise ValueError(
                "machines must have equal GPU counts; got "
                f"{sorted(gpu_counts)}"
            )
        return ClusterSpec(
            num_machines=len(machines),
            gpus_per_machine=gpu_counts.pop(),
            nic_gbps=float(resource_info.get("nic_gbps", 100.0)),
        )
    return ClusterSpec(
        num_machines=int(resource_info.get("machines", 1)),
        gpus_per_machine=int(resource_info.get("gpus_per_machine", 1)),
        nic_gbps=float(resource_info.get("nic_gbps", 100.0)),
    )


def measure_alpha(model: BuiltModel, num_batches: int,
                  seed: int = 0) -> Dict[str, float]:
    """Measured per-variable alpha: unique rows touched / total rows.

    Runs forward+backward on a few batches of the model's own dataset and
    inspects each sparse gradient.  Shards of one partitioned variable are
    merged into their parent's alpha.
    """
    graph = model.graph
    sparse_vars = [name for name, sparse in classify_variables(graph).items()
                   if sparse]
    if not sparse_vars or num_batches < 1:
        return {}
    session = Session(graph, seed=seed)
    grad_tensors = {
        name: graph.get_op(graph.gradient_info[name]).output
        for name in sparse_vars
    }
    # parent -> (unique row ids seen per batch, total rows)
    fractions: Dict[str, List[float]] = {name: [] for name in sparse_vars}
    for b in range(num_batches):
        feed = model.feed(model.dataset.batch(model.batch_size, b))
        values = session.run([grad_tensors[n] for n in sparse_vars], feed)
        for name, value in zip(sparse_vars, values):
            if isinstance(value, IndexedSlices):
                fractions[name].append(value.alpha())
            else:
                # Statically sparse-classified, but the gradient
                # materialized dense at runtime: every row may be touched,
                # so alpha is 1 -- the strongest sparse-as-dense signal
                # (section 3.1's near-1 refinement), not an error.
                fractions[name].append(1.0)
    per_var = {name: float(np.mean(f)) for name, f in fractions.items()}

    # Merge partition shards into their parent (weighted by rows).
    merged: Dict[str, List] = {}
    for name, alpha in per_var.items():
        var = graph.variables[name]
        info = getattr(var, "partition_info", None)
        parent = info["parent"] if info else name
        rows = var.shape[0]
        merged.setdefault(parent, []).append((alpha, rows, name))
    result: Dict[str, float] = {}
    for parent, entries in merged.items():
        total_rows = sum(rows for _, rows, _ in entries)
        weighted = sum(alpha * rows for alpha, rows, _ in entries)
        parent_alpha = weighted / total_rows
        for _, _, name in entries:
            result[name] = parent_alpha
    return result


def _partition_bounds(model: BuiltModel, config: ParallaxConfig) -> int:
    """Largest partition count any partitioner-scoped variable allows."""
    pvars = model.graph.get_collection("partitioned_variables")
    if not pvars:
        return 1
    max_rows = min(p.full_shape[0] for p in pvars)
    return max(1, min(config.max_partitions, max_rows))


def _build_distributed(
    model_builder: Callable[[], BuiltModel],
    resource_info: Union[ClusterSpec, dict, str],
    config: Optional[ParallaxConfig],
) -> DistributedRunner:
    """The full build pipeline behind :func:`auto_parallelize`.

    Probes the single-GPU graph, measures alpha for the sparse-as-dense
    refinement, runs the Equation-1 partition search, transforms the
    winning graph under the config's architecture, and wires the chosen
    backend -- returning a ready (possibly elastic) runner.
    """
    cluster = resolve_cluster(resource_info)
    cfg = config if config is not None else ParallaxConfig()

    def build(num_partitions: int) -> BuiltModel:
        with sampling_partitions(num_partitions):
            model = model_builder()
        if not model.graph.gradient_info:
            raise ValueError(
                "model builder must call gradients() and opt.update() on "
                "the single-GPU graph (see paper Figure 3)"
            )
        return model

    initial = max(1, cluster.num_machines)
    probe = build(initial)

    # Sparse-as-dense refinement from measured alpha (section 3.1).
    alphas: Dict[str, float] = {}
    sparse_as_dense: Dict[str, bool] = {}
    if (cfg.alpha_measure_batches > 0
            and cfg.sparse_as_dense_threshold <= 1.0
            and cfg.architecture == "hybrid"):
        alphas = measure_alpha(probe, cfg.alpha_measure_batches,
                               seed=cfg.seed)
        sparse_as_dense = {
            name: alpha >= cfg.sparse_as_dense_threshold
            for name, alpha in alphas.items()
        }

    # The measured decision attaches to the *parent* variable, and is
    # re-keyed onto each graph's own shard names: a model rebuilt at a
    # different partition count (the Equation-1 search, elastic re-shard
    # rescales) applies the same classification to every shard instead
    # of silently dropping overrides whose names no longer exist.
    def _parent_name(graph, name: str) -> str:
        info = getattr(graph.variables[name], "partition_info", None)
        return info["parent"] if info else name

    parent_overrides = {
        _parent_name(probe.graph, name): flag
        for name, flag in sparse_as_dense.items()
    }

    def overrides_for(graph) -> Dict[str, bool]:
        return {
            name: parent_overrides[_parent_name(graph, name)]
            for name in graph.variables
            if _parent_name(graph, name) in parent_overrides
        }

    plan_builder = graph_plan_builder(cfg, overrides_for)

    search_result: Optional[SearchResult] = None
    best_partitions = initial
    max_partitions = _partition_bounds(probe, cfg)
    uses_ps = cfg.architecture in ("hybrid", "ps", "opt_ps")
    if cfg.search_partitions and uses_ps and max_partitions > 1:

        def measure(num_partitions: int) -> float:
            model = build(num_partitions)
            plan = plan_builder(model.graph)
            # The runner compiles its step fetches once (in __init__), so
            # every sampled iteration -- warmup included -- replays the
            # same CompiledPlan; the measurement sees steady-state
            # execution, not per-iteration graph interpretation.
            runner = DistributedRunner(model, cluster, plan, seed=cfg.seed)
            total = cfg.sample_warmup + cfg.sample_iterations
            times = [runner.step(i).wall_time for i in range(total)]
            return float(np.mean(times[cfg.sample_warmup:]))

        search = PartitionSearch(measure, initial=initial,
                                 max_partitions=max_partitions)
        search_result = search.run()
        best_partitions = search_result.best_partitions

    final_model = (probe if best_partitions == initial
                   else build(best_partitions))
    plan = plan_builder(final_model.graph)
    backend = cfg.comm.backend
    if cfg.comm.transport is not None:
        from repro.core.backend import MultiprocBackend

        # A configured instance; make_backend passes it through and
        # elastic rescales clone it with .fresh(), so the transport
        # choice survives every migration.
        backend = MultiprocBackend(transport=cfg.comm.transport)
    if cfg.elastic.enabled:
        runner: DistributedRunner = ElasticRunner(
            final_model, cluster, plan,
            model_builder=model_builder,
            plan_builder=plan_builder,
            checkpoint_every=cfg.elastic.checkpoint_every,
            fault_plan=cfg.elastic.fault_plan,
            seed=cfg.seed,
            backend=backend,
            plan_cache_size=cfg.plan_cache_size,
            verify_plans=True if cfg.verify_plans else None,
        )
    else:
        runner = DistributedRunner(
            final_model, cluster, plan,
            seed=cfg.seed, backend=backend,
            plan_cache_size=cfg.plan_cache_size,
            verify_plans=True if cfg.verify_plans else None)
    runner.partition_search = search_result
    runner.config = cfg
    runner.measured_alphas = alphas
    runner.plan_overrides_for = overrides_for
    runner.emulate_nic_bw = cfg.elastic.emulate_nic_bw
    if cfg.save_path:
        runner.default_save_path = cfg.save_path
    return runner


class Runner:
    """User-facing handle over an automatically parallelized model.

    Returned by :func:`auto_parallelize`.  Training state, checkpoints,
    and the Transcript live in :attr:`distributed` (the underlying
    :class:`~repro.core.runner.DistributedRunner` or
    :class:`~repro.core.elastic.ElasticRunner`); unknown attributes
    (``save``, ``restore``, ``close``, ``transcript``, ...) delegate to
    it.  The handle adds routing: :meth:`fit` and :meth:`step` drive
    training through the autopilot controller when the config enables
    one, through the fault-recovering elastic loop when the runner is
    elastic, and plainly otherwise; :meth:`serve` stands up an inference
    server over the live weights.
    """

    def __init__(self, distributed: DistributedRunner):
        self.distributed = distributed
        self._controller = None

    @property
    def config(self) -> ParallaxConfig:
        """The resolved config the runner was built under."""
        return self.distributed.config

    @property
    def elastic(self) -> bool:
        """Whether the underlying runner supports rescale/recovery."""
        return isinstance(self.distributed, ElasticRunner)

    def autopilot(self):
        """The runner's :class:`~repro.autopilot.AutopilotController`.

        Created lazily on first use (requires an elastic runner); the
        same controller instance is returned thereafter, so its decision
        log spans the whole run.
        """
        if self._controller is None:
            from repro.autopilot import AutopilotController

            self._controller = AutopilotController(self.distributed)
        return self._controller

    def step(self, iteration: int) -> IterationResult:
        """One synchronous training step.

        Routes through the autopilot controller (which meters the step
        and may live-migrate the plan at window boundaries) when the
        config enables it.
        """
        if self.config.autopilot.enabled:
            return self.autopilot().step(iteration)
        return self.distributed.step(iteration)

    def fit(self, num_iterations: int, start_iteration: int = 0,
            shrink_on_failure: bool = False) -> List[IterationResult]:
        """Train for *num_iterations*, with whatever loop the config asks.

        Autopilot-enabled configs get the metered adaptive loop, elastic
        runners the fault-recovering ``run_elastic`` loop, and plain
        runners a straight step loop (*shrink_on_failure* applies to the
        first two).
        """
        if self.config.autopilot.enabled:
            return self.autopilot().run(
                num_iterations, start_iteration,
                shrink_on_failure=shrink_on_failure)
        if self.elastic:
            return self.distributed.run_elastic(
                num_iterations, start_iteration,
                shrink_on_failure=shrink_on_failure)
        return self.distributed.run(num_iterations, start_iteration)

    def serve(self, **kwargs):
        """An :class:`~repro.serve.server.InferenceServer` over the live
        weights (``make_server`` with this runner's model and config)."""
        return make_server(self.distributed.model, self.config,
                           runner=self.distributed, **kwargs)

    def __getattr__(self, name):
        return getattr(self.distributed, name)


def auto_parallelize(
    model_builder: Callable[[], BuiltModel],
    resource_info: Union[ClusterSpec, dict, str],
    config: Optional[ParallaxConfig] = None,
) -> Runner:
    """Automatically parallelize a single-GPU model (Figure 3, line 19).

    The one-call public entry point: builds the model, measures alpha,
    runs the Equation-1 partition search, transforms the graph under
    ``config.architecture``, and returns a :class:`Runner` handle whose
    ``fit``/``step``/``serve``/``autopilot`` methods drive the result.

    Args:
        model_builder: zero-argument callable building the single-GPU
            graph -- including ``gradients`` and ``opt.update`` -- and
            returning a :class:`BuiltModel`.  Variables created inside a
            ``parallax.partitioner()`` scope within the builder are
            partitioned with the searched count.
        resource_info: cluster description (ClusterSpec, dict, or a JSON
            resource file path).
        config: optional :class:`ParallaxConfig`.

    Returns:
        A :class:`Runner`; its ``partition_search`` attribute records
        the Equation-1 search when one ran.
    """
    return Runner(_build_distributed(model_builder, resource_info, config))


def get_runner(
    model_builder: Callable[[], BuiltModel],
    resource_info: Union[ClusterSpec, dict, str],
    config: Optional[ParallaxConfig] = None,
) -> DistributedRunner:
    """The pre-facade entry point: the bare distributed runner.

    Equivalent to ``auto_parallelize(...).distributed`` -- same build
    pipeline, without the :class:`Runner` handle.  Kept for existing
    callers; new code should prefer :func:`auto_parallelize`.
    """
    return auto_parallelize(model_builder, resource_info,
                            config).distributed


def make_server(model, config: Optional[ParallaxConfig] = None, *,
                runner=None, state=None, router=None, fetches=None):
    """A ready :class:`~repro.serve.server.InferenceServer` for *model*
    under *config*'s serving knobs.

    Weights come from (in priority order) a live *runner*'s
    ``logical_state()``, an explicit *state* mapping, or a fresh
    seeded initialization from ``config.seed`` -- the same values a
    ``Session(graph, seed)`` would start from.  Pass *router* to serve
    row-partitioned embeddings from their owning workers instead of the
    local table.
    """
    from repro.serve import (
        InferenceServer,
        seeded_weights,
        weights_from_state,
    )

    cfg = config if config is not None else ParallaxConfig()
    if runner is not None:
        state = runner.logical_state()
    weights = (weights_from_state(model.graph, state)
               if state is not None
               else seeded_weights(model.graph, cfg.seed))
    return InferenceServer(
        model, weights,
        fetches=fetches,
        max_batch=cfg.serve.max_batch,
        max_delay_ms=cfg.serve.max_delay_ms,
        router=router,
        plan_cache_size=cfg.plan_cache_size,
    )
