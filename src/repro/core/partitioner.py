"""Sparse-variable partitioning search (paper section 3.2).

Parallax models iteration time as a function of the partition count P:

    iter_time(P) = theta0 + theta1 / P + theta2 * P          (Equation 1)

theta0 is fixed cost, theta1 the parallelizable aggregation work, theta2
the per-partition overhead (stitching, per-partition op management).  The
model is fitted to sampled iteration times; because it is convex in P,
Parallax brackets the minimum by doubling P from an initial guess (the
number of machines) until time rises, then halving below the initial
guess until time rises, and finally reads the best P off the fitted curve
between the sampled extremes -- no extrapolation (section 3.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class PartitionCostModel:
    """Fitted Equation-1 coefficients."""

    theta0: float
    theta1: float
    theta2: float

    def predict(self, num_partitions: int) -> float:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        return (self.theta0 + self.theta1 / num_partitions
                + self.theta2 * num_partitions)

    def best_partitions(self, lo: int, hi: int) -> int:
        """argmin of the fitted curve over integer P in [lo, hi].

        The unconstrained minimizer is sqrt(theta1/theta2); clamping to the
        sampled range implements the paper's no-extrapolation rule.
        """
        if lo > hi:
            raise ValueError(f"empty range [{lo}, {hi}]")
        if self.theta2 <= 0:
            return hi  # no partitioning penalty detected: more is better
        if self.theta1 <= 0:
            return lo
        continuous = math.sqrt(self.theta1 / self.theta2)
        candidates = {lo, hi, max(lo, min(hi, int(math.floor(continuous)))),
                      max(lo, min(hi, int(math.ceil(continuous))))}
        return min(candidates, key=self.predict)


def fit_cost_model(samples: List[Tuple[int, float]]) -> PartitionCostModel:
    """Least-squares fit of Equation 1 to (P, iteration time) samples.

    The three coefficients need three *distinct* partition counts --
    duplicate P values add rows but no rank, and a rank-deficient design
    would silently return the minimum-norm pseudo-solution (garbage
    coefficients presented as a fit).  Both degeneracies raise a clear
    ``ValueError`` instead; :class:`PartitionSearch` falls back to the
    best sampled point when that happens.
    """
    if len(samples) < 3:
        raise ValueError(
            f"need at least 3 samples to fit 3 coefficients, got "
            f"{len(samples)}"
        )
    if any(p < 1 for p, _ in samples):
        raise ValueError("partition counts must be >= 1")
    distinct = sorted({p for p, _ in samples})
    if len(distinct) < 3:
        raise ValueError(
            f"need at least 3 distinct partition counts to fit Equation 1, "
            f"got {distinct}"
        )
    ps = np.array([float(p) for p, _ in samples])
    ts = np.array([float(t) for _, t in samples])
    design = np.stack([np.ones_like(ps), 1.0 / ps, ps], axis=1)
    coeffs, _, rank, _ = np.linalg.lstsq(design, ts, rcond=None)
    if rank < 3 or not np.all(np.isfinite(coeffs)):
        raise ValueError(
            f"Equation-1 design matrix is singular for partition counts "
            f"{distinct}; sample better-conditioned counts"
        )
    return PartitionCostModel(*map(float, coeffs))


@dataclass
class SearchResult:
    """Outcome of the partition search."""

    best_partitions: int
    samples: List[Tuple[int, float]]
    model: Optional[PartitionCostModel]

    @property
    def num_samples(self) -> int:
        return len(self.samples)


class PartitionSearch:
    """The doubling/halving bracket search around the convex minimum.

    Args:
        measure: callback returning the (sampled) iteration time for a
            given partition count.  On the functional plane this runs real
            training iterations; on the performance plane it queries the
            simulator.
        initial: starting P; the paper uses the number of machines.
        min_partitions: smallest P that fits in memory (paper Table 5's
            "Min" column starts here).
        max_partitions: upper bound (cannot exceed the variable's rows).
    """

    def __init__(
        self,
        measure: Callable[[int], float],
        initial: int,
        min_partitions: int = 1,
        max_partitions: int = 1 << 14,
    ):
        if not 1 <= min_partitions <= max_partitions:
            raise ValueError("require 1 <= min_partitions <= max_partitions")
        self.measure = measure
        self.initial = max(min_partitions, min(initial, max_partitions))
        self.min_partitions = min_partitions
        self.max_partitions = max_partitions
        self._cache: Dict[int, float] = {}

    def _time(self, p: int) -> float:
        if p not in self._cache:
            self._cache[p] = float(self.measure(p))
        return self._cache[p]

    def run(self) -> SearchResult:
        """Bracket, fit, and pick the best partition count."""
        # Phase 1: double from the initial point until time increases.
        p = self.initial
        self._time(p)
        while p * 2 <= self.max_partitions:
            if self._time(p * 2) > self._time(p):
                break
            p *= 2
        # Phase 2: halve below the initial point until time increases.
        p = self.initial
        while p // 2 >= self.min_partitions and p // 2 > 0:
            if self._time(p // 2) > self._time(p):
                break
            p //= 2

        samples = sorted(self._cache.items())
        lo, hi = samples[0][0], samples[-1][0]
        if len(samples) < 3:
            # Degenerate bracket (tiny search space): pick the best sample.
            best = min(samples, key=lambda kv: kv[1])[0]
            return SearchResult(best, samples, None)
        try:
            model = fit_cost_model(samples)
        except ValueError:
            # Ill-conditioned samples (the fit guards reject them): fall
            # back to the best sampled point rather than extrapolating.
            best = min(samples, key=lambda kv: kv[1])[0]
            return SearchResult(best, samples, None)
        best = model.best_partitions(lo, hi)
        # Guard against a poor fit: never do worse than the best sample.
        best_sampled, best_sampled_time = min(samples, key=lambda kv: kv[1])
        if self._time(best) > best_sampled_time:
            best = best_sampled
        return SearchResult(best, sorted(self._cache.items()), model)


def brute_force_search(
    measure: Callable[[int], float],
    min_partitions: int,
    max_partitions: int,
    step: int = 2,
    give_up_ratio: float = 0.9,
) -> SearchResult:
    """The paper's brute-force comparison method (section 6.5).

    Starts from the smallest feasible partition count and multiplies by
    ``step``, stopping when throughput drops below ``give_up_ratio`` of
    the best seen (the paper stops when it "drops more than 10%").
    """
    samples: List[Tuple[int, float]] = []
    best_time = float("inf")
    p = min_partitions
    while p <= max_partitions:
        t = float(measure(p))
        samples.append((p, t))
        best_time = min(best_time, t)
        if t > best_time / give_up_ratio:
            break
        p *= step
    best = min(samples, key=lambda kv: kv[1])[0]
    return SearchResult(best, samples, None)
