"""Parallax core: the paper's primary contribution.

* :mod:`repro.core.hybrid` -- sparsity-aware hybrid architecture
  assignment over model profiles (PS for sparse variables, AllReduce for
  dense; section 3.1).
* :mod:`repro.core.partitioner` -- cost-model-driven search for the
  number of sparse-variable partitions (section 3.2, Equation 1).
* :mod:`repro.core.transform` -- automatic graph transformation from a
  single-GPU graph to a distributed one (section 4.3).
* :mod:`repro.core.api` -- the user-facing ``shard`` / ``partitioner`` /
  ``get_runner`` interface (section 4.1, Figure 3).
* :mod:`repro.core.runner` -- the functional distributed execution engine.
"""

from repro.core.hybrid import hybrid_plan, parallax_plan
from repro.core.partitioner import (
    PartitionCostModel,
    PartitionSearch,
    SearchResult,
    brute_force_search,
    fit_cost_model,
)
from repro.core.api import (
    ParallaxConfig,
    get_runner,
    measure_alpha,
    resolve_cluster,
    shard,
)
from repro.core.backend import (
    BACKENDS,
    ExecutionBackend,
    InprocBackend,
    MultiprocBackend,
    make_backend,
)
from repro.core.partition_context import partitioner
from repro.core.runner import DistributedRunner, DistributedSession
from repro.core.transform import (
    GraphSyncPlan,
    classify_variables,
    transform_graph,
    TransformedGraph,
)
from repro.core.transform.plan import (
    ar_graph_plan,
    hybrid_graph_plan,
    ps_graph_plan,
)

__all__ = [
    "hybrid_plan",
    "parallax_plan",
    "PartitionCostModel",
    "PartitionSearch",
    "SearchResult",
    "brute_force_search",
    "fit_cost_model",
    "ParallaxConfig",
    "get_runner",
    "measure_alpha",
    "resolve_cluster",
    "shard",
    "partitioner",
    "BACKENDS",
    "ExecutionBackend",
    "InprocBackend",
    "MultiprocBackend",
    "make_backend",
    "DistributedRunner",
    "DistributedSession",
    "GraphSyncPlan",
    "classify_variables",
    "transform_graph",
    "TransformedGraph",
    "ar_graph_plan",
    "hybrid_graph_plan",
    "ps_graph_plan",
]
