"""Elastic cluster runtime: checkpoint-backed rescaling and recovery.

Parallax's transform assumes a fixed cluster; this module makes the
transformed graph *elastic*.  :class:`ElasticRunner` extends
:class:`~repro.core.runner.DistributedRunner` with:

* ``rescale(new_cluster)`` -- snapshot logical state through the existing
  checkpoint path, re-run ``transform_graph`` (and with it the greedy
  ``place_variables`` placement) for the new replica count, migrate dense
  replica state and bit-exactly re-shard partitioned sparse variables
  when the partition count changes, and re-compile step plans through the
  compile-once engine;
* a checkpoint cadence (``checkpoint_every``) plus ``run_elastic`` -- a
  driving loop that recovers from scheduled
  :class:`~repro.cluster.faults.WorkerFailure` events by restoring the
  last checkpoint (optionally shrink-rescaling away the dead machine) and
  replaying the lost iterations.

The state contract is the logical (base-named) variable dict
``DistributedRunner.logical_state`` already defines, so an elastic
migration and a ``save``/``restore`` round trip are the same operation
-- which is exactly what the differential tests exploit.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.cluster.faults import FaultPlan, WorkerFailureError
from repro.cluster.spec import ClusterSpec
from repro.comm.ps import merge_shards, split_rows
from repro.comm.transcript import Transcript
from repro.core.partition_context import sampling_partitions
from repro.core.runner import DistributedRunner, IterationResult
from repro.core.transform.plan import GraphSyncPlan
from repro.graph.executor import CompiledPlan
from repro.graph.graph import Graph
from repro.nn.models.common import BuiltModel

__all__ = ["ElasticRunner", "partition_layout", "reshard_logical_state",
           "replicated_slot_suffixes"]


def _reconcile_residual_state(
    state: Dict[str, np.ndarray],
    expected_names: Dict[str, str],
    graph: Graph,
) -> Dict[str, np.ndarray]:
    """Fit error-feedback residuals in *state* to the post-rescale graph.

    Residuals are approximate state (unsent gradient mass): they migrate
    exactly whenever names and shapes line up -- per-variable residuals
    always do, and row-sharded ones re-shard through
    :func:`reshard_logical_state` like optimizer slots -- but a
    partition-count change can re-layout fusion buckets, changing bucket
    residual shapes or counts.  Those reset to zeros (the error-feedback
    contract allows dropping a residual: it only delays, never corrupts,
    the dropped mass), and residuals the new plan no longer creates are
    dropped so the strict state-match check stays meaningful for real
    variables.
    """
    from repro.comm.compression import is_residual_name

    out = dict(state)
    for base, graph_name in expected_names.items():
        if not is_residual_name(base):
            continue
        shape = tuple(graph.variables[graph_name].shape)
        if base not in out or tuple(np.shape(out[base])) != shape:
            out[base] = np.zeros(shape, dtype=np.float32)
    for name in list(out):
        if is_residual_name(name) and name not in expected_names:
            del out[name]
    return out


def partition_layout(graph: Graph) -> Dict[str, List[int]]:
    """Parent variable name -> row-offset boundaries, for one graph."""
    return {
        pvar.name: list(pvar.offsets)
        for pvar in graph.get_collection("partitioned_variables")
    }


def _shard_group(parent: str, num_partitions: int,
                 suffix: Optional[str]) -> List[str]:
    names = []
    for p in range(num_partitions):
        base = f"{parent}/part_{p}"
        names.append(base if suffix is None else f"{base}/{suffix}")
    return names


def replicated_slot_suffixes(graph: Graph,
                             layout: Dict[str, List[int]],
                             ) -> Dict[str, set]:
    """Per parent, the slot suffixes that are NOT row-sharded.

    Structural rule, read off the graph that owns the shards: a slot
    variable ``parent/part_p/<suffix>`` is row-sharded iff its shape
    equals its shard's shape (velocity, adam_m, ...); anything else
    (Adam's ``(1,)`` step counter) is per-shard bookkeeping that must be
    replicated, not split.  Comparing full shapes -- not just the leading
    dimension -- keeps 1-row shards unambiguous.
    """
    out: Dict[str, set] = {}
    for parent, offsets in layout.items():
        replicated = set()
        for p in range(len(offsets) - 1):
            shard_name = f"{parent}/part_{p}"
            shard_shape = graph.variables[shard_name].shape
            prefix = shard_name + "/"
            for name, var in graph.variables.items():
                if name.startswith(prefix) and var.shape != shard_shape:
                    replicated.add(name[len(prefix):])
        out[parent] = replicated
    return out


def reshard_logical_state(
    state: Dict[str, np.ndarray],
    old_layout: Dict[str, List[int]],
    new_layout: Dict[str, List[int]],
    replicated: Optional[Dict[str, set]] = None,
) -> Dict[str, np.ndarray]:
    """Re-shard a logical state dict from one partition layout to another.

    For every partitioned parent, the old shards (and their row-shaped
    optimizer slots, e.g. ``emb/part_0/velocity``) are concatenated in
    partition order and re-split at the new offsets -- pure row movement,
    so ``concat(new shards) == concat(old shards)`` bit-for-bit.
    Per-shard bookkeeping slots that are not row-sharded (Adam's step
    counter) must agree across shards and are replicated into the new
    layout.  Unpartitioned variables pass through untouched.

    ``replicated`` optionally names, per parent, the slot suffixes to
    replicate rather than split (:func:`replicated_slot_suffixes` derives
    it structurally from the owning graph, which the elastic rescale
    does); without it, a shape heuristic decides -- row counts matching
    the old shard layout mean row-sharded, anything else must be
    shard-invariant.
    """
    if set(old_layout) != set(new_layout):
        raise ValueError(
            f"partitioned variables differ between layouts: "
            f"{sorted(set(old_layout) ^ set(new_layout))}"
        )
    out = dict(state)
    for parent, old_offsets in old_layout.items():
        new_offsets = new_layout[parent]
        old_p = len(old_offsets) - 1
        new_p = len(new_offsets) - 1
        if old_offsets[-1] != new_offsets[-1]:
            raise ValueError(
                f"{parent!r}: old layout has {old_offsets[-1]} rows but "
                f"new layout has {new_offsets[-1]}"
            )
        old_rows = [hi - lo for lo, hi in zip(old_offsets, old_offsets[1:])]

        # Discover slot suffixes riding on the shards (velocity, adam_m,
        # adam_step, ...); None stands for the shard value itself.
        suffixes: set = set()
        for p in range(old_p):
            prefix = f"{parent}/part_{p}/"
            suffixes.update(
                key[len(prefix):] for key in state if key.startswith(prefix)
            )
        for suffix in [None] + sorted(suffixes):
            old_names = _shard_group(parent, old_p, suffix)
            missing = [n for n in old_names if n not in state]
            if missing:
                raise ValueError(
                    f"state is missing shards of {parent!r}: {missing}"
                )
            pieces = [np.asarray(state[n]) for n in old_names]
            if replicated is not None:
                row_sharded = suffix not in replicated.get(parent, set())
            else:
                row_sharded = (
                    suffix != "adam_step"
                    and all(p.ndim >= 1 for p in pieces)
                    and [p.shape[0] for p in pieces] == old_rows
                )
            if row_sharded:
                new_pieces = split_rows(merge_shards(pieces), new_offsets)
            else:
                # Replicated per-shard bookkeeping: every shard must hold
                # the same value (synchronous training updates them in
                # lock step), so the new shards inherit it verbatim.
                for name, piece in zip(old_names[1:], pieces[1:]):
                    if not np.array_equal(piece, pieces[0]):
                        raise ValueError(
                            f"cannot re-shard {name!r}: per-shard values "
                            "disagree and are not row-sharded"
                        )
                new_pieces = [pieces[0].copy() for _ in range(new_p)]
            for name in old_names:
                del out[name]
            new_names = _shard_group(parent, new_p, suffix)
            for name, piece in zip(new_names, new_pieces):
                out[name] = piece
    return out


class ElasticRunner(DistributedRunner):
    """A :class:`DistributedRunner` that survives rescales and failures.

    Args:
        model: the built single-GPU model (as for DistributedRunner).
        cluster: the initial cluster.
        plan: the initial synchronization plan.
        model_builder: optional zero-argument builder (the ``get_runner``
            contract: builds the graph including ``gradients`` and
            ``opt.update``).  Required only for rescales that change the
            partition count, which must rebuild the single-GPU graph.
        plan_builder: optional ``graph -> GraphSyncPlan`` used to re-plan
            a rebuilt graph (shard names change with the partition
            count).  Required together with ``model_builder``.
        checkpoint_every: in-memory checkpoint cadence of
            :meth:`run_elastic` (iterations per snapshot).
        fault_plan: deterministic failure schedule injected into ``step``.
    """

    def __init__(
        self,
        model: BuiltModel,
        cluster: ClusterSpec,
        plan: GraphSyncPlan,
        *,
        model_builder: Optional[Callable[[], BuiltModel]] = None,
        plan_builder: Optional[Callable[[Graph], GraphSyncPlan]] = None,
        checkpoint_every: int = 1,
        fault_plan: Optional[FaultPlan] = None,
        seed: int = 0,
        transcript: Optional[Transcript] = None,
        engine: str = "compiled",
        backend: str = "inproc",
        plan_cache_size: int = 32,
        verify_plans: Optional[bool] = None,
    ):
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if model_builder is not None and plan_builder is None:
            raise ValueError(
                "model_builder requires a plan_builder: a rebuilt graph "
                "has new shard names and needs a fresh plan"
            )
        super().__init__(model, cluster, plan, seed=seed,
                         transcript=transcript, engine=engine,
                         fault_plan=fault_plan, backend=backend,
                         plan_cache_size=plan_cache_size,
                         verify_plans=verify_plans)
        self.model_builder = model_builder
        self.plan_builder = plan_builder
        self.checkpoint_every = checkpoint_every
        self.num_rescales = 0
        self.recovery_log: List[dict] = []
        self._progress = 0
        self._checkpoint_iteration = 0
        self._servers: List = []
        self._checkpoint_state = self._snapshot()

    # -- checkpoint cadence ----------------------------------------------
    def _snapshot(self) -> Dict[str, np.ndarray]:
        """Copy of the logical state (kernels mutate arrays in place)."""
        return {k: v.copy() for k, v in self.logical_state().items()}

    def checkpoint(self, next_iteration: int) -> None:
        """Snapshot state as the recovery point for *next_iteration*."""
        self._checkpoint_iteration = int(next_iteration)
        self._checkpoint_state = self._snapshot()
        # Train-and-serve: hand the freshly cut snapshot to every
        # attached server.  The server swaps between batches, so a live
        # serving fleet tracks training at checkpoint cadence while each
        # batch still sees exactly one weight generation.
        for server in self._servers:
            server.reload(self._checkpoint_state)

    # -- train-and-serve hot reload ---------------------------------------
    def attach_server(self, server) -> None:
        """Hot-reload *server* from every future checkpoint.

        *server* is anything with ``reload(state)`` (an
        :class:`~repro.serve.server.InferenceServer`); each
        ``checkpoint()`` pushes the snapshot it just cut, which is
        bit-exact against a cold server restored from the same state.
        """
        self._servers.append(server)

    def detach_server(self, server) -> None:
        self._servers.remove(server)

    def publish_to(self, server) -> None:
        """One-shot hot reload of *server* from the current live state
        (not the last checkpoint) -- snapshot-consistent because the
        snapshot is cut before the handoff and the server swaps between
        batches."""
        server.reload(self._snapshot())

    @property
    def last_checkpoint_iteration(self) -> int:
        return self._checkpoint_iteration

    def step(self, iteration: int) -> IterationResult:
        result = super().step(iteration)
        self._progress = iteration + 1
        return result

    # -- rescaling --------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        """Partition count of the current model (1 when unpartitioned)."""
        layout = partition_layout(self.model.graph)
        if not layout:
            return 1
        return max(len(offsets) - 1 for offsets in layout.values())

    def rescale(
        self,
        new_cluster: ClusterSpec,
        num_partitions: Optional[int] = None,
        state: Optional[Dict[str, np.ndarray]] = None,
        plan_builder: Optional[Callable] = None,
    ) -> "ElasticRunner":
        """Migrate training onto *new_cluster* without losing state.

        Snapshots logical state (or uses the provided *state*), rebuilds
        the single-GPU model when *num_partitions* changes (re-sharding
        the snapshot bit-exactly), re-runs the graph transformation --
        which re-places PS variables for the new machine count -- and
        recompiles the step plans.  Training resumes exactly where the
        snapshot left off: the next ``step`` on M replicas is
        bit-identical to a fresh M-replica runner restored from the same
        checkpoint.

        Passing *plan_builder* migrates onto a *different* plan (the
        autopilot's plan-family / fusion / compression switches): the
        new builder produces the plan for this rescale -- also when the
        partition count is unchanged -- and replaces ``self.plan_builder``
        once the migration commits, so later rescales stay on the new
        plan family.  A rolled-back migration keeps the old builder.
        """
        start = time.perf_counter()
        if state is None:
            state = self._snapshot()
        builder = plan_builder if plan_builder is not None \
            else self.plan_builder
        model, plan = self.model, self.plan
        if plan_builder is not None:
            # Build before touching any runner state: a builder that
            # raises leaves the runner untouched.
            plan = plan_builder(model.graph)
        if (num_partitions is not None
                and num_partitions != self.num_partitions):
            if self.model_builder is None:
                raise ValueError(
                    "changing the partition count requires a model_builder "
                    "(the single-GPU graph must be rebuilt)"
                )
            old_layout = partition_layout(self.model.graph)
            if not old_layout:
                raise ValueError(
                    "model has no partitioned variables to re-shard"
                )
            with sampling_partitions(num_partitions):
                model = self.model_builder()
            if not model.graph.gradient_info:
                raise ValueError(
                    "model builder must call gradients() and opt.update() "
                    "(see paper Figure 3)"
                )
            state = reshard_logical_state(
                state, old_layout, partition_layout(model.graph),
                replicated=replicated_slot_suffixes(self.model.graph,
                                                    old_layout))
            plan = builder(model.graph)

        old_replicas = self.num_replicas
        compiled_before = CompiledPlan.compiled_total
        transcript = self.transcript
        # Keep the old runner guts so a failed migration can roll back:
        # rescale is atomic -- it either completes or leaves the runner
        # exactly as it was.  The old execution backend (and with it any
        # worker processes) stays alive until the migration commits.
        old_guts = {
            name: getattr(self, name)
            for name in ("model", "cluster", "plan", "transformed",
                         "session", "shards", "_feed_names",
                         "_step_fetches", "step_plans", "backend")
        }
        # Re-run the full construction pipeline: transform (placement for
        # the new machine count), session stores, compiled step plans,
        # and a fresh backend configured like the old one -- under
        # ``multiproc`` this respawns one worker process per new replica
        # and reconnects the transport.  ANY failure in the pipeline
        # (worker spawn, state validation, the state broadcast) rolls
        # the runner back to the pre-rescale guts, old worker fleet
        # included -- rescale is atomic.
        try:
            DistributedRunner.__init__(self, model, new_cluster, plan,
                                       seed=self.seed,
                                       transcript=transcript,
                                       engine=self.engine,
                                       fault_plan=self.fault_plan,
                                       backend=old_guts["backend"].fresh(),
                                       plan_cache_size=self.plan_cache_size)
            state = _reconcile_residual_state(
                state, self.transformed.logical_variable_names,
                self.transformed.graph)
            expected = set(self.transformed.logical_variable_names)
            mismatch = sorted(expected ^ set(state))
            if mismatch:
                raise ValueError(
                    f"rescale state does not match the new graph's "
                    f"logical variables; mismatched names: {mismatch[:8]}"
                )
            self._load_state(state)
        except BaseException:
            if self.backend is not old_guts["backend"]:
                self.backend.shutdown(force=True)
            for name, value in old_guts.items():
                setattr(self, name, value)
            raise
        # The migration committed: release the pre-rescale backend's
        # workers (a no-op for inproc) and adopt the new plan builder.
        old_guts["backend"].shutdown()
        if plan_builder is not None:
            self.plan_builder = plan_builder
        self.num_rescales += 1
        # The migrated state is the new recovery point: the old
        # checkpoint's names may no longer exist after a re-shard.
        self.checkpoint(self._progress)
        self.transcript.note(
            "elastic/rescale", iteration=self._progress,
            old_replicas=old_replicas, new_replicas=self.num_replicas,
            num_partitions=self.num_partitions,
            plans_compiled=CompiledPlan.compiled_total - compiled_before,
            wall_time=time.perf_counter() - start,
        )
        return self

    # -- fault-tolerant driving loop -------------------------------------
    def run_elastic(
        self,
        num_iterations: int,
        start_iteration: int = 0,
        shrink_on_failure: bool = False,
    ) -> List[IterationResult]:
        """Train through the fault plan, recovering from worker kills.

        Checkpoints every ``checkpoint_every`` completed iterations.  A
        :class:`WorkerFailureError` rolls back to the last checkpoint
        (discarding the results of lost iterations), optionally evicting
        the failed worker's machine first (``shrink_on_failure``), then
        replays.  Returns one result per distinct iteration; replayed
        attempts overwrite the lost ones.
        """
        results: List[IterationResult] = []
        end = start_iteration + num_iterations
        self.checkpoint(start_iteration)
        i = start_iteration
        while i < end:
            try:
                result = self.step(i)
            except WorkerFailureError as failure:
                self._recover(failure, shrink=shrink_on_failure)
                del results[self._checkpoint_iteration - start_iteration:]
                i = self._checkpoint_iteration
                continue
            results.append(result)
            i += 1
            if (i - start_iteration) % self.checkpoint_every == 0:
                self.checkpoint(i)
        return results

    def _recover(self, failure: WorkerFailureError, shrink: bool) -> None:
        start = time.perf_counter()
        lost = failure.iteration - self._checkpoint_iteration
        state = {k: v.copy() for k, v in self._checkpoint_state.items()}
        # Roll progress back first so a shrink-rescale checkpoints the
        # restored state under the checkpoint's iteration number.
        self._progress = self._checkpoint_iteration
        if shrink and self.cluster.num_machines > 1:
            action = "shrink"
            self.rescale(self.cluster.without_machine(failure.machine),
                         state=state)
        else:
            action = "restore"
            self._load_state(state)
        self.recovery_log.append({
            "iteration": failure.iteration,
            "worker": failure.worker,
            "machine": failure.machine,
            "action": action,
            "lost_iterations": lost,
            "wall_time": time.perf_counter() - start,
        })
        self.transcript.note(
            "elastic/recovery", iteration=failure.iteration,
            action=action, lost_iterations=lost, worker=failure.worker,
        )
