"""Thread-local state behind the ``parallax.partitioner()`` context.

Variables created inside a ``partitioner()`` scope are partitioned into
the *active* number of partitions -- a value Parallax itself varies while
sampling iteration times for the partition search (paper sections 3.2 and
4.2: "the number of partitions for sampling is passed to the workers").

Kept in its own dependency-free module so low-level layers
(``repro.nn.layers``) can consult it without importing the core package.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator, Optional

_state = threading.local()


def _depth() -> int:
    return getattr(_state, "depth", 0)


def active_partitions() -> Optional[int]:
    """Partition count for variables created in the current scope.

    Returns None outside any ``partitioner()`` scope.  Inside a scope it
    returns the sampling value installed by the runner (default 1 when a
    graph is built outside ``get_runner``).
    """
    if _depth() == 0:
        return None
    return getattr(_state, "value", None) or 1


def installed_partitions() -> Optional[int]:
    """The sampling count currently installed, or None if none is.

    Unlike :func:`active_partitions` this does not require being inside a
    ``partitioner()`` scope -- the elastic runtime uses it to rebuild a
    model at the same partition count the surrounding context installed.
    """
    return getattr(_state, "value", None)


@contextlib.contextmanager
def partitioner() -> Iterator[None]:
    """Mark variables created inside as targets for partition search.

    Mirrors paper Figure 3 line 9.  Each ``partitioner()`` use partitions
    its variables with the same searched count; nesting is rejected, like
    Parallax ("each partitioner partitions variables into the same number
    of partitions ... multiple partitioners must be created and applied
    independently").
    """
    if _depth() > 0:
        raise RuntimeError("partitioner() scopes cannot be nested")
    _state.depth = _depth() + 1
    try:
        yield
    finally:
        _state.depth -= 1


@contextlib.contextmanager
def sampling_partitions(value: int) -> Iterator[None]:
    """Install the partition count the next graph build should use.

    Used by ``get_runner`` while it rebuilds the model at different
    partition counts during the search.
    """
    if value < 1:
        raise ValueError("partition count must be >= 1")
    previous = getattr(_state, "value", None)
    _state.value = int(value)
    try:
        yield
    finally:
        _state.value = previous
