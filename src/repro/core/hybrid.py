"""Hybrid architecture assignment: the paper's section 3.1 decision rule.

Dense variables synchronize by ring AllReduce; sparse variables go to
parameter servers.  One refinement from the paper: a sparse variable whose
alpha is close to 1 communicates almost its full size anyway, so the
efficient AR transport can beat PS despite the 1/alpha extra volume --
"if the alpha value of a sparse variable is close to 1, then it may be
helpful to handle the variable as a dense variable and use AllReduce."
The crossover is exposed as ``sparse_as_dense_threshold``.
"""

from __future__ import annotations


from repro.cluster.plan import SyncMethod, SyncPlan, VariableAssignment
from repro.nn.profiles import ModelProfile

# Above this alpha a "sparse" variable is synchronized as dense.  The
# paper states the principle without a number; the ablation bench
# (benchmarks/test_ablations.py) sweeps it.
DEFAULT_SPARSE_AS_DENSE_THRESHOLD = 0.95


def hybrid_plan(
    profile: ModelProfile,
    num_partitions: int = 1,
    sparse_as_dense_threshold: float = DEFAULT_SPARSE_AS_DENSE_THRESHOLD,
    local_aggregation: bool = True,
    smart_placement: bool = True,
) -> SyncPlan:
    """Build Parallax's hybrid synchronization plan.

    Args:
        profile: model to synchronize.
        num_partitions: partition count for PS-managed sparse variables
            (normally chosen by :mod:`repro.core.partitioner`).
        sparse_as_dense_threshold: alpha above which a sparse variable is
            treated as dense and AllReduced.
        local_aggregation: per-machine aggregation before pushing.
        smart_placement: colocate aggregation/update ops with servers.
    """
    assignments = []
    for v in profile.variables:
        if v.is_sparse and v.alpha < sparse_as_dense_threshold:
            partitions = num_partitions
            if v.rows is not None:
                partitions = min(partitions, v.rows)
            assignments.append(
                VariableAssignment(v, SyncMethod.PS,
                                   num_partitions=partitions)
            )
        elif v.is_sparse:
            # Near-dense access: the gradient is still IndexedSlices, but
            # densifying and AllReducing moves barely more data over the
            # far faster transport.
            assignments.append(VariableAssignment(v, SyncMethod.ALLREDUCE))
        else:
            assignments.append(VariableAssignment(v, SyncMethod.ALLREDUCE))
    return SyncPlan(
        name=f"parallax({profile.name})",
        assignments=assignments,
        local_aggregation=local_aggregation,
        smart_placement=smart_placement,
    )


# Parallax == hybrid assignment with all optimizations on.
parallax_plan = hybrid_plan
