"""Pluggable execution backends: who actually runs a training step.

The compiled engine (PR 1) decides *what* to execute -- a frozen schedule
over the transformed graph.  An :class:`ExecutionBackend` decides *where*:

* :class:`InprocBackend` (default) replays the schedule inside the
  driving process, replica after replica -- bit-identical to the
  original sequential loop, zero IPC.
* :class:`MultiprocBackend` spawns one OS worker process per replica.
  The global schedule is partitioned by device ownership: every op runs
  exactly once, in the process that owns its device (GPU ops on their
  replica's worker; server-side CPU ops on the first worker of their
  machine, mirroring Parallax's server/worker colocation).  Values that
  cross process boundaries -- PS pushes and pulls, the all-to-all
  buffer exchange behind (fused) AllReduce and AllGatherv -- travel over
  a :class:`~repro.comm.transport.Transport`.

Both backends produce the same per-step losses bit for bit and the same
logical Transcript records: the partitioned schedule preserves the
global dependency order, collectives run the identical ring arithmetic
on identically ordered contributions, and cross-machine edge accounting
moves with the op that owned it in-process.

Backend protocol
----------------
A backend is bound to one :class:`~repro.core.runner.DistributedRunner`
via :meth:`ExecutionBackend.start` (called at the end of the runner's
``__init__``; an elastic rescale starts a fresh backend and shuts the
old one down).  After that:

* :meth:`run_step` executes one synchronous iteration and returns the
  per-replica losses in replica order;
* :meth:`read_variables` / :meth:`load_state` are the authoritative
  variable plane -- the runner's checkpoint, inspection, and elastic
  migration paths all route through them, because under ``multiproc``
  the driving process' own stores are stale copies;
* :meth:`shutdown` releases workers and transport resources.
"""

from __future__ import annotations

import time
import traceback
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.comm.transport import (
    CONTROLLER,
    MultiprocTransport,
    ShmTransport,
    SimulatedLatencyTransport,
    Transport,
    TransportTimeout,
    counter_delta,
    merge_counters,
)
from repro.graph.executor import SPECIALIZE, _missing_kernel, plan_order
from repro.graph.graph import Operation
from repro.tensor.dense import as_array, nbytes_of

# Op types whose kernels exchange data across every replica through the
# session's run cache; the multiprocess plane ships their remote inputs
# explicitly and mutes duplicate transcript recording (see
# :class:`_WorkerSession`).
_COLLECTIVES = frozenset({"allreduce", "fused_allreduce", "allgatherv",
                          "compressed_allreduce", "compressed_allgatherv"})


def op_owner(op: Operation, cluster) -> Optional[int]:
    """The worker rank that executes *op* under the multiprocess backend.

    GPU ops belong to their replica.  Server-side (CPU) ops belong to the
    first worker on their machine -- the process standing in for the
    colocated parameter-server process Parallax launches per machine.
    Unplaced ops (the ``group`` train op) have no owner; their value is
    never needed.
    """
    if op.device is None:
        return None
    if op.device.is_gpu:
        return (op.device.machine * cluster.gpus_per_machine
                + op.device.index)
    return op.device.machine * cluster.gpus_per_machine


def build_all_worker_entries(transformed, fetch_ops: Sequence[Operation],
                             order: Optional[Sequence[Operation]] = None,
                             ) -> Dict[int, List[tuple]]:
    """Every rank's slice of the global step schedule, in one pass.

    Entries appear in global :func:`~repro.graph.executor.plan_order`
    order -- the same order every rank (and the in-process engine)
    derives independently, which is what makes the partitioned execution
    deadlock-free: a rank blocked waiting for a remote value only ever
    waits on schedule positions strictly before its own.  The plan
    verifier checks that theorem over these concrete entries instead of
    assuming it (see :mod:`repro.analysis.deadlock`).

    Entry shapes:
      ``("exec", op, send_to)`` -- run *op* here, then send its value to
      each rank in *send_to* (they consume it remotely);
      ``("recv", name, src)`` -- block until rank *src* sends the value
      of op *name*.

    Ownership/consumer maps are computed once and shared across ranks --
    callers that need several ranks' slices (worker spawn, the deadlock
    analysis) should use this instead of calling
    :func:`build_worker_entries` per rank.
    """
    cluster = transformed.cluster
    num_ranks = cluster.total_gpus
    if order is None:
        order = plan_order(transformed.graph, fetch_ops)
    owner: Dict[str, Optional[int]] = {}
    for op in order:
        if op.op_type == "group":
            # Pure control grouping (the train op): its inputs are update
            # ops executed by their owners; the group itself runs nowhere.
            owner[op.name] = None
            continue
        own = op_owner(op, cluster)
        if own is None:
            raise ValueError(
                f"multiproc backend requires placed ops; {op.name!r} "
                f"({op.op_type}) has no device"
            )
        owner[op.name] = own

    consumer_ranks: Dict[str, set] = {}
    for op in order:
        if owner[op.name] is None:
            continue
        for tensor in op.inputs:
            consumer_ranks.setdefault(tensor.op.name,
                                      set()).add(owner[op.name])

    entries: Dict[int, List[tuple]] = {r: [] for r in range(num_ranks)}
    for op in order:
        own = owner[op.name]
        if own is None:
            continue
        remote = tuple(sorted(consumer_ranks.get(op.name, set()) - {own}))
        entries[own].append(("exec", op, remote))
        for rank in remote:
            entries[rank].append(("recv", op.name, own))
    return entries


def build_worker_entries(transformed, fetch_ops: Sequence[Operation],
                         rank: int) -> List[tuple]:
    """Rank *rank*'s slice of the global step schedule.

    See :func:`build_all_worker_entries` for the entry shapes and the
    ordering guarantee.
    """
    return build_all_worker_entries(transformed, fetch_ops).get(rank, [])


class _MutedCollectiveRuntime:
    """Runtime proxy handed to non-canonical collective kernels.

    Every worker runs the full ring for its own replica's collective op
    (bit-identical results by construction); only replica 0's op records
    the ring's transfers, so the merged per-worker transcripts carry each
    chunk movement exactly once -- the same records the in-process
    engine's shared-cache execution produces.
    """

    __slots__ = ("_session",)
    transcript = None

    def __init__(self, session):
        self._session = session

    @property
    def run_cache(self):
        return self._session.run_cache


def _make_worker_session(transformed, seed: int):
    from repro.core.runner import DistributedSession

    class WorkerSession(DistributedSession):
        def _specialize_kernel(self, op):
            if (op.op_type in _COLLECTIVES
                    and op.attrs.get("replica", 0) != 0):
                from repro.graph.ops import FORWARD

                generic = FORWARD[op.op_type]
                muted = _MutedCollectiveRuntime(self)

                def muted_collective(op, inputs, runtime):
                    return generic(op, inputs, muted)

                return muted_collective
            return super()._specialize_kernel(op)

    return WorkerSession(transformed, seed=seed)


class _WorkerPlan:
    """One rank's compiled slice of the step schedule.

    Kernels are bound exactly as :class:`~repro.graph.executor.
    CompiledPlan` binds them -- session specialization first (store
    routing, SGD prebinding), then the SPECIALIZE registry, then the
    generic FORWARD table -- and cross-machine edge accounting uses the
    session's static edge table for the ops this rank owns.
    """

    def __init__(self, session, transformed, fetch_ops, rank: int,
                 recv_timeout: Optional[float] = None):
        self.rank = rank
        self.recv_timeout = recv_timeout
        edge_fn = session._compile_edge_fn()
        steps: List[tuple] = []
        for entry in build_worker_entries(transformed, fetch_ops, rank):
            if entry[0] == "recv":
                _, name, src = entry
                steps.append(("recv", name, src, None, None, None))
                continue
            _, op, sends = entry
            kernel = session._specialize_kernel(op)
            if kernel is None:
                builder = SPECIALIZE.get(op.op_type)
                if builder is not None:
                    kernel = builder(op)
            if kernel is None:
                from repro.graph.ops import FORWARD

                kernel = FORWARD.get(op.op_type) or _missing_kernel(
                    op.op_type)
            input_names = tuple(t.op.name for t in op.inputs)
            edges = edge_fn(op) if edge_fn is not None else None
            steps.append(("exec", op, sends, kernel, input_names, edges))
        self.steps = steps
        # This rank's share of the step fetches (its replica's loss).
        loss_names = {t.op.name for t in transformed.replica_losses}
        self.loss_names = [
            op.name for kind, op, *_ in steps
            if kind == "exec" and op.name in loss_names
        ]

    def execute(self, session, transport: Transport,
                feeds: Dict[str, np.ndarray]) -> Dict[str, object]:
        session._begin_run()
        session.run_cache = {}
        values: Dict[str, object] = {
            name: (v if isinstance(v, np.ndarray) else as_array(v))
            for name, v in feeds.items()
        }
        seen = session._seen_edges
        record = session.transcript.record
        rank = self.rank
        position = -1
        try:
            for position, (kind, op, extra, kernel, input_names,
                           edges) in enumerate(self.steps):
                if kind == "recv":
                    values[op] = transport.recv(rank, extra, ("v", op),
                                                timeout=self.recv_timeout)
                    continue
                name = op.name
                value = values.get(name)
                if value is None and name not in values:
                    inputs = [values[n] for n in input_names]
                    session._current_op = op
                    if edges is not None:
                        for pos, key, tag, src_m, dst_m in edges:
                            v = inputs[pos]
                            if v is None or key in seen:
                                continue
                            seen.add(key)
                            record(tag=tag, src_machine=src_m,
                                   dst_machine=dst_m, nbytes=nbytes_of(v))
                    value = kernel(op, inputs, session)
                    values[name] = value
                for dst in extra:
                    transport.send(rank, dst, ("v", name), value)
        except BaseException as exc:
            # Name exactly where this rank was in its schedule; the
            # controller folds this into the WorkerFailureError it
            # raises (see MultiprocBackend._result).
            step = self.steps[position] if position >= 0 else None
            exc._worker_context = {
                "rank": rank,
                "schedule_index": position if position >= 0 else None,
                "op_name": (None if step is None
                            else step[1] if step[0] == "recv"
                            else step[1].name),
            }
            raise
        session._current_op = None
        return values


def _read_graph_variable(session, name: str) -> np.ndarray:
    from repro.graph.session import split_replica_prefix

    replica, _ = split_replica_prefix(name)
    if replica is not None:
        return session.replica_stores[replica].read(name)
    return session.ps_store.read(name)


def _run_worker(spec: dict, transport: Transport, rank: int) -> None:
    """Worker process main loop: build the session + plan, serve commands.

    Commands arrive from the controller as ``("cmd",)`` messages; every
    command is answered with exactly one ``("res",)`` message, which is
    what keeps the controller and all workers in lock step (a ``step``
    command is only issued after every worker acknowledged the previous
    one, so dataflow value keys never collide across iterations).
    """
    from repro.core.runner import apply_logical_state

    try:
        transformed = spec["transformed"]
        session = _make_worker_session(transformed, spec["seed"])
        fetch_ops = [transformed.graph.get_op(n)
                     for n in spec["fetch_names"]]
        plan = _WorkerPlan(session, transformed, fetch_ops, rank,
                           recv_timeout=spec.get("recv_timeout"))
        shard = spec["shard"]
        batch_size = spec["batch_size"]
        feed_names = spec["feed_names"]
    except BaseException:
        transport.send(rank, CONTROLLER, ("res",),
                       ("err", traceback.format_exc(), None))
        return
    transport.send(rank, CONTROLLER, ("res",), ("ready", rank, None))

    while True:
        cmd = transport.recv(rank, CONTROLLER, ("cmd",))
        try:
            if cmd[0] == "step":
                iteration = cmd[1]
                batch = shard.batch(batch_size, iteration)
                if len(batch) != len(feed_names):
                    raise ValueError(
                        f"dataset yields {len(batch)} arrays but replica "
                        f"{rank} feeds {len(feed_names)} placeholders"
                    )
                feeds = dict(zip(feed_names, batch))
                counters_before = dict(transport.counters)
                values = plan.execute(session, transport, feeds)
                losses = {name: float(values[name])
                          for name in plan.loss_names}
                delta = (session.transcript.transfers,
                         session.transcript.events(),
                         counter_delta(transport.counters, counters_before))
                session.transcript.clear()
                transport.send(rank, CONTROLLER, ("res",),
                               ("ok", losses, delta))
            elif cmd[0] == "read":
                out = {name: _read_graph_variable(session, name)
                       for name in cmd[1]}
                transport.send(rank, CONTROLLER, ("res",),
                               ("ok", out, None))
            elif cmd[0] == "load":
                apply_logical_state(session, transformed.graph, cmd[1])
                transport.send(rank, CONTROLLER, ("res",),
                               ("ok", None, None))
            elif cmd[0] == "shutdown":
                transport.send(rank, CONTROLLER, ("res",),
                               ("ok", None, None))
                return
            else:
                raise ValueError(f"unknown worker command {cmd[0]!r}")
        except BaseException as exc:
            context = getattr(exc, "_worker_context", None)
            if cmd[0] == "step":
                context = dict(context or {"rank": rank},
                               iteration=cmd[1])
            transport.send(rank, CONTROLLER, ("res",),
                           ("err", traceback.format_exc(), context))


class ExecutionBackend:
    """Where a runner's training step executes; see the module docstring.

    Subclasses implement the four-method protocol (:meth:`run_step`,
    :meth:`read_variables`, :meth:`load_state`, :meth:`shutdown`).  A
    backend instance binds to exactly one runner at a time.
    """

    name = "abstract"

    def __init__(self):
        self.runner = None

    def start(self, runner) -> None:
        """Bind to *runner* and allocate execution resources."""
        self.runner = runner

    def fresh(self) -> "ExecutionBackend":
        """An unbound backend configured like this one.

        The elastic rescale builds the post-migration runner with a
        *new* backend (worker fleets cannot be rebound to a different
        replica count); subclasses with constructor configuration
        override this so that configuration survives the rescale.
        """
        return type(self)()

    def run_step(self, iteration: int) -> List[float]:
        """Execute one synchronous iteration; per-replica losses."""
        raise NotImplementedError

    def read_variables(self, names: Sequence[str],
                       ) -> Dict[str, np.ndarray]:
        """Authoritative current values of graph-level variable names."""
        raise NotImplementedError

    def load_state(self, values: Dict[str, np.ndarray]) -> None:
        """Write logical (base-named) values into every replica/server."""
        raise NotImplementedError

    def shutdown(self, force: bool = False) -> None:
        """Release resources; idempotent."""


class InprocBackend(ExecutionBackend):
    """The default backend: the original single-process execution loop.

    Synchronous plans run one compiled plan covering every replica;
    asynchronous plans step replicas one after another (each worker sees
    the state its predecessors produced -- the paper's staleness
    semantics).  Variable reads and writes touch the runner's own
    session stores directly.
    """

    name = "inproc"

    def run_step(self, iteration: int) -> List[float]:
        runner = self.runner
        session = runner.session
        if runner.engine == "compiled":
            if runner.transformed.replica_train_ops is None:
                results = session.run_plan(runner.step_plans[0],
                                           runner.feeds_for(iteration))
                return [float(v) for v in results[:-1]]
            feeds = runner.feeds_for(iteration)
            losses = []
            for r in range(runner.num_replicas):
                loss_r, _ = session.run_plan(runner.step_plans[r], feeds)
                losses.append(float(loss_r))
            return losses
        if runner.transformed.replica_train_ops is None:
            results = session.run_interpreted(runner._step_fetches[0],
                                              runner.feeds_for(iteration))
            return [float(v) for v in results[:-1]]
        feeds = runner.feeds_for(iteration)
        losses = []
        for r in range(runner.num_replicas):
            loss_r, _ = session.run_interpreted(runner._step_fetches[r],
                                                feeds)
            losses.append(float(loss_r))
        return losses

    def read_variables(self, names: Sequence[str],
                       ) -> Dict[str, np.ndarray]:
        return {name: _read_graph_variable(self.runner.session, name)
                for name in names}

    def load_state(self, values: Dict[str, np.ndarray]) -> None:
        from repro.core.runner import apply_logical_state

        apply_logical_state(self.runner.session,
                            self.runner.transformed.graph, values)


class MultiprocBackend(ExecutionBackend):
    """One worker process per replica, wired by a MultiprocTransport.

    Workers are spawned in :meth:`start` from a pickled
    :class:`~repro.core.transform.transform.TransformedGraph` (plus their
    dataset shard and feed-name routing), compute their own feeds
    locally, execute their slice of the partitioned schedule, and ship a
    per-step result -- replica loss plus their logical Transcript delta
    -- back to the controller.  Deltas merge into the runner's
    transcript in worker-rank order, so merged byte accounting is
    deterministic and backend-independent.

    Only synchronous plans are supported: asynchronous PS training is
    defined by replicas *serially* applying gradients, which has no
    parallel execution.
    """

    name = "multiproc"

    #: transport kinds accepted by the ``transport`` constructor arg.
    TRANSPORTS = ("shm", "queue", "tcp")

    def __init__(self, start_timeout: float = 120.0,
                 step_timeout: float = 600.0,
                 transport: str = "shm",
                 simulated_latency: float = 0.0,
                 latency_jitter: float = 0.0,
                 latency_seed: int = 0):
        super().__init__()
        if transport not in self.TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; expected one of "
                f"{self.TRANSPORTS}"
            )
        self.start_timeout = start_timeout
        self.step_timeout = step_timeout
        self.transport_kind = transport
        # Deterministic injected latency (seconds) applied to every
        # transport send; keeps losses bit-identical while stretching
        # wall clock -- see SimulatedLatencyTransport.
        self.simulated_latency = simulated_latency
        self.latency_jitter = latency_jitter
        self.latency_seed = latency_seed
        self.transport: Optional[Transport] = None
        self.processes: list = []
        self._var_owner: Dict[str, int] = {}
        # Serialization-cost totals across every step this backend ran
        # (controller + worker endpoints); per-step values also land as
        # ``transport/step`` Notes on the transport transcript.
        self.serialization_totals: Dict[str, float] = {}

    def fresh(self) -> "MultiprocBackend":
        return type(self)(start_timeout=self.start_timeout,
                          step_timeout=self.step_timeout,
                          transport=self.transport_kind,
                          simulated_latency=self.simulated_latency,
                          latency_jitter=self.latency_jitter,
                          latency_seed=self.latency_seed)

    def _make_transport(self, num_workers: int, context) -> Transport:
        """The configured transport, latency-wrapped when requested."""
        if self.transport_kind == "shm":
            # Rings must exist before the fork: workers inherit the
            # mappings, so there is no attach/name-lookup path.
            transport: Transport = ShmTransport(num_workers,
                                                context=context)
        elif self.transport_kind == "tcp":
            from repro.comm.tcp import TcpTransport

            # Listeners bind before the fork: children inherit the
            # bound sockets, so every address exists before any
            # process connects.
            transport = TcpTransport(num_workers)
        else:
            transport = MultiprocTransport(num_workers, context=context)
        if self.simulated_latency > 0 or self.latency_jitter > 0:
            transport = SimulatedLatencyTransport(
                transport, delay_s=self.simulated_latency,
                jitter_s=self.latency_jitter, seed=self.latency_seed,
            )
        return transport

    # -- lifecycle -------------------------------------------------------
    def start(self, runner) -> None:
        if runner.transformed.replica_train_ops is not None:
            raise ValueError(
                "the multiproc backend supports synchronous plans only: "
                "asynchronous PS training is serial by definition"
            )
        super().start(runner)
        import multiprocessing as mp

        try:
            context = mp.get_context("fork")
        except ValueError:  # pragma: no cover - platform without fork
            context = mp.get_context()
        n = runner.num_replicas
        self.transport = self._make_transport(n, context)
        self._var_owner = self._variable_owner_map(runner.transformed)
        fetch_names = [t.op.name for t in runner._step_fetches[0]]
        self.processes = []
        for rank in range(n):
            spec = {
                "transformed": runner.transformed,
                "seed": runner.seed,
                "fetch_names": fetch_names,
                "shard": runner.shards[rank],
                "batch_size": runner.model.batch_size,
                "feed_names": runner._feed_names[rank],
                "recv_timeout": self.step_timeout,
            }
            process = context.Process(
                target=_run_worker, args=(spec, self.transport, rank),
                daemon=True, name=f"parallax-worker-{rank}",
            )
            process.start()
            self.processes.append(process)
        for rank in range(n):
            tag, _, _ = self._result(rank, self.start_timeout)
            if tag != "ready":  # pragma: no cover - startup failure path
                raise RuntimeError(f"worker {rank} failed to start")

    def _variable_owner_map(self, transformed) -> Dict[str, int]:
        """Graph variable name -> rank holding its authoritative value.

        A variable lives wherever its update op runs (optimizer slots
        follow their update); variables nothing updates default to their
        read op's owner, or rank 0 when unplaced -- their value never
        changes, so every rank's seeded copy agrees anyway.
        """
        from repro.graph.session import split_replica_prefix

        graph = transformed.graph
        cluster = transformed.cluster
        owners: Dict[str, int] = {}
        for name in graph.variables:
            replica, _ = split_replica_prefix(name)
            if replica is not None:
                owners[name] = replica
                continue
            read_op = graph.get_op(name) if graph.has_op(name) else None
            own = op_owner(read_op, cluster) if read_op is not None else None
            owners[name] = own if own is not None else 0
        for op in graph.operations:
            if not op.attrs.get("is_update"):
                continue
            own = op_owner(op, cluster)
            if own is None:
                continue
            # Every string attr naming a graph variable is one the update
            # kernel reads or writes (the target plus its optimizer
            # slots, whatever the optimizer calls them) -- derived
            # structurally so new optimizers route correctly without
            # this map knowing their slot attr keys.
            for value in op.attrs.values():
                if isinstance(value, str) and value in graph.variables:
                    owners[value] = own
        return owners

    # -- controller-side protocol ---------------------------------------
    def _result(self, rank: int, timeout: float) -> tuple:
        """Next result from *rank*, with liveness checks while waiting.

        One monotonic deadline bounds the whole wait; recv runs in
        <= 1s slices purely so a dead worker is noticed promptly.
        Decrementing a budget by a fixed 1.0 per timeout slice (the
        old scheme) drifts: a recv that returns early under-charges
        and scheduling delay over-charges, so the stated timeout was
        only nominal.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            try:
                payload = self.transport.recv(
                    CONTROLLER, rank, ("res",),
                    timeout=min(max(remaining, 0.0), 1.0))
            except TransportTimeout:
                # Externally-launched fleets (RemoteWorkerBackend) have
                # no local process handles to poll.
                process = (self.processes[rank]
                           if rank < len(self.processes) else None)
                if process is not None and not process.is_alive():
                    self.shutdown(force=True)
                    raise RuntimeError(
                        f"worker {rank} died (exit code "
                        f"{process.exitcode})"
                    ) from None
                if time.monotonic() >= deadline:
                    self.shutdown(force=True)
                    raise RuntimeError(
                        f"worker {rank} did not answer within {timeout}s"
                    ) from None
                continue
            if payload[0] == "err":
                self.shutdown(force=True)
                context = payload[2] if len(payload) > 2 else None
                if isinstance(context, dict):
                    from repro.cluster.faults import WorkerFailureError

                    gpm = self.runner.cluster.gpus_per_machine
                    raise WorkerFailureError(
                        context.get("iteration", -1), rank, rank // gpm,
                        schedule_index=context.get("schedule_index"),
                        op_name=context.get("op_name"),
                        detail=payload[1],
                    )
                raise RuntimeError(
                    f"worker {rank} failed:\n{payload[1]}"
                )
            return payload

    def _command(self, command: tuple) -> List[tuple]:
        """Broadcast a command; collect one result per rank, rank order."""
        for rank in range(self.transport.num_workers):
            self.transport.send(CONTROLLER, rank, ("cmd",), command)
        return [self._result(rank, self.step_timeout)
                for rank in range(self.transport.num_workers)]

    # -- backend protocol ------------------------------------------------
    def run_step(self, iteration: int) -> List[float]:
        runner = self.runner
        losses_by_name: Dict[str, float] = {}
        step_counters: Dict[str, float] = {}
        controller_before = dict(self.transport.counters)
        for _, losses, delta in self._command(("step", iteration)):
            losses_by_name.update(losses)
            transfers, events, worker_counters = delta
            runner.transcript.extend(transfers, events)
            merge_counters(step_counters, worker_counters)
        merge_counters(step_counters,
                       counter_delta(self.transport.counters,
                                     controller_before))
        self.transport.transcript.note(
            tag="transport/step", iteration=iteration, **step_counters
        )
        merge_counters(self.serialization_totals, step_counters)
        return [losses_by_name[t.op.name]
                for t in runner.transformed.replica_losses]

    def read_variables(self, names: Sequence[str],
                       ) -> Dict[str, np.ndarray]:
        by_rank: Dict[int, List[str]] = {}
        for name in names:
            by_rank.setdefault(self._var_owner.get(name, 0),
                               []).append(name)
        for rank, wanted in by_rank.items():
            self.transport.send(CONTROLLER, rank, ("cmd",),
                                ("read", wanted))
        out: Dict[str, np.ndarray] = {}
        for rank in sorted(by_rank):
            _, values, _ = self._result(rank, self.step_timeout)
            out.update(values)
        return out

    def load_state(self, values: Dict[str, np.ndarray]) -> None:
        from repro.core.runner import apply_logical_state

        self._command(("load", values))
        # Mirror into the controller's own (otherwise stale) stores so
        # direct session inspection stays coherent with the workers.
        apply_logical_state(self.runner.session,
                            self.runner.transformed.graph, values)

    def shutdown(self, force: bool = False) -> None:
        if self.transport is None:
            return
        transport, self.transport = self.transport, None
        if not force:
            try:
                for rank in range(transport.num_workers):
                    transport.send(CONTROLLER, rank, ("cmd",),
                                   ("shutdown",))
                for rank in range(transport.num_workers):
                    transport.recv(CONTROLLER, rank, ("res",), timeout=10.0)
            except Exception:  # pragma: no cover - degraded shutdown
                force = True
        for process in self.processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        self.processes = []
        transport.close()


class RemoteWorkerBackend(MultiprocBackend):
    """Controller half of a rendezvous-launched cross-host TCP fleet.

    Where :class:`MultiprocBackend` forks its workers and hands them
    their spec as a constructor argument, this backend expects the
    workers to be launched *externally* (``repro.cli launch
    --rendezvous tcp://... --rank R --world-size N``, one process per
    replica, any machine).  :meth:`start` runs the rendezvous server at
    the configured ``tcp://host:port``, waits for every worker to join
    and barrier, then ships each worker its spec as a ``("spec",)``
    message over the resulting :class:`~repro.comm.tcp.TcpTransport` --
    after which the command/response protocol is exactly the forked
    backend's, so steps, reads, loads, and shutdown are inherited
    unchanged.  Liveness polling degrades gracefully: there are no
    local process handles, so only the timeout (not exit-code
    detection) catches a dead remote worker.
    """

    name = "remote"

    def __init__(self, rendezvous: str,
                 start_timeout: float = 120.0,
                 step_timeout: float = 600.0,
                 listen_host: str = "127.0.0.1"):
        super().__init__(start_timeout=start_timeout,
                         step_timeout=step_timeout, transport="tcp")
        self.rendezvous = rendezvous
        self.listen_host = listen_host

    def fresh(self) -> "MultiprocBackend":
        raise RuntimeError(
            "a rendezvous-launched fleet cannot be rescaled in place; "
            "relaunch the workers with the new world size"
        )

    def start(self, runner) -> None:
        if runner.transformed.replica_train_ops is not None:
            raise ValueError(
                "the remote backend supports synchronous plans only: "
                "asynchronous PS training is serial by definition"
            )
        ExecutionBackend.start(self, runner)
        from repro.comm.tcp import (
            RendezvousServer,
            TcpTransport,
            bind_listener,
            parse_rendezvous,
        )

        n = runner.num_replicas
        host, port = parse_rendezvous(self.rendezvous)
        listener = bind_listener(self.listen_host)
        server = RendezvousServer(
            n, listener.getsockname(), host=host, port=port,
        ).start()
        addr_map = server.wait(timeout=self.start_timeout)
        self.transport = TcpTransport.for_rank(
            n, CONTROLLER, addr_map, listener,
        )
        self._var_owner = self._variable_owner_map(runner.transformed)
        fetch_names = [t.op.name for t in runner._step_fetches[0]]
        self.processes = []
        for rank in range(n):
            spec = {
                "transformed": runner.transformed,
                "seed": runner.seed,
                "fetch_names": fetch_names,
                "shard": runner.shards[rank],
                "batch_size": runner.model.batch_size,
                "feed_names": runner._feed_names[rank],
                "recv_timeout": self.step_timeout,
            }
            self.transport.send(CONTROLLER, rank, ("spec",), spec)
        for rank in range(n):
            tag, _, _ = self._result(rank, self.start_timeout)
            if tag != "ready":  # pragma: no cover - startup failure
                raise RuntimeError(f"worker {rank} failed to start")


def run_remote_worker(rendezvous: str, rank: int, world_size: int,
                      listen_host: str = "127.0.0.1",
                      join_timeout: float = 60.0) -> None:
    """One externally-launched TCP worker, start to shutdown.

    Binds a listener, joins the rendezvous, builds the transport from
    the returned address map, receives its spec from the controller,
    and serves the standard command loop until the shutdown command.
    This is what ``repro.cli launch`` runs per rank.
    """
    from repro.comm.tcp import TcpTransport, bind_listener, rendezvous_join

    listener = bind_listener(listen_host)
    addr_map = rendezvous_join(rendezvous, rank, listener.getsockname(),
                               timeout=join_timeout)
    transport = TcpTransport.for_rank(world_size, rank, addr_map,
                                      listener)
    try:
        spec = transport.recv(rank, CONTROLLER, ("spec",),
                              timeout=join_timeout)
        _run_worker(spec, transport, rank)
    finally:
        transport.close()


BACKENDS = {
    "inproc": InprocBackend,
    "multiproc": MultiprocBackend,
}


def make_backend(backend) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through)."""
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        return BACKENDS[backend]()
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of "
            f"{sorted(BACKENDS)}"
        ) from None
