"""Grouped configuration for the public Parallax API.

``ParallaxConfig`` began as a flat bag of ~20 knobs accreted across the
engine, fusion, elastic, transport, and serving PRs.  This module
regroups it into sub-configs that mirror the planes of the system:

* :class:`CommConfig` -- the synchronization plane (fusion, gradient
  compression, execution backend, message transport).
* :class:`ElasticConfig` -- the elastic runtime (checkpoint cadence,
  fault schedule, functional NIC-degradation emulation).
* :class:`ServeConfig` -- the serving plane (batch coalescing).
* :class:`AutopilotConfig` -- the online replanning controller
  (telemetry window, hysteresis, cooldown/backoff).

The legacy flat constructor kwargs (``ParallaxConfig(fusion=False)``,
``ParallaxConfig(elastic=True)`` and friends) keep working through
deprecation shims: each one emits a ``DeprecationWarning`` whose message
starts with ``ParallaxConfig`` (the test suite escalates exactly those
to errors outside the explicit shim tests) and forwards to the grouped
field, so a legacy construction builds a config equal to its grouped
spelling.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.cluster.faults import FaultPlan

__all__ = [
    "CommConfig",
    "ElasticConfig",
    "ServeConfig",
    "AutopilotConfig",
    "ParallaxConfig",
    "graph_plan_builder",
]


@dataclass
class CommConfig:
    """Synchronization-plane knobs: fusion, compression, backend, transport.

    Attributes:
        fusion: pack dense AllReduce gradients into size-capped buckets
            (Horovod-style tensor fusion); bit-identical to unfused
            training.
        fusion_buffer_mb: fusion bucket size cap in megabytes (measured
            in on-wire bytes, so compression fits more gradient per
            bucket).
        compression: gradient compression on the collective paths --
            None (exact), "topk", "fp16", or "topk+fp16".  PS-synchronized
            variables are unaffected; requires a collective architecture.
        compression_ratio: fraction of elements (rows, for sparse
            gradients) top-k keeps.
        backend: execution backend -- "inproc" (sequential in-process
            engine) or "multiproc" (one OS worker process per replica).
        transport: message plane of the multiproc backend -- "shm"
            (default), "queue", or "tcp".  Requires ``backend="multiproc"``.
    """

    fusion: bool = True
    fusion_buffer_mb: float = 4.0
    compression: Optional[str] = None
    compression_ratio: float = 0.1
    backend: str = "inproc"
    transport: Optional[str] = None

    def __post_init__(self):
        if self.fusion_buffer_mb <= 0:
            raise ValueError("fusion_buffer_mb must be > 0")
        if self.compression is not None:
            from repro.comm.compression import parse_spec

            parse_spec(self.compression)  # raises on unknown specs
        if not 0.0 < self.compression_ratio <= 1.0:
            raise ValueError("compression_ratio must be in (0, 1]")
        from repro.core.backend import BACKENDS

        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of "
                f"{sorted(BACKENDS)}"
            )
        if self.transport is not None:
            from repro.core.backend import MultiprocBackend

            if self.backend != "multiproc":
                raise ValueError(
                    "transport selection requires backend='multiproc' "
                    "(the inproc engine has no message plane)"
                )
            if self.transport not in MultiprocBackend.TRANSPORTS:
                raise ValueError(
                    f"unknown transport {self.transport!r}; expected "
                    f"one of {MultiprocBackend.TRANSPORTS}"
                )


@dataclass
class ElasticConfig:
    """Elastic-runtime knobs: checkpointing, fault schedule, emulation.

    Attributes:
        enabled: return an :class:`~repro.core.elastic.ElasticRunner`
            (supports ``rescale`` and fault-injected recovery) instead of
            a plain DistributedRunner.
        checkpoint_every: in-memory recovery snapshots per this many
            completed iterations.
        fault_plan: optional deterministic failure schedule injected into
            every ``step``.
        emulate_nic_bw: when set (bytes/second), the functional plane
            *pays* for scheduled :class:`~repro.cluster.faults.NicDegradation`
            windows instead of merely noting them: each step inside a
            degradation window sleeps for the extra wire time
            ``bytes * (1/factor - 1) / emulate_nic_bw`` its network
            transfers would take on the degraded link.  The autopilot's
            planner prices candidates with the identical formula, so
            predicted and measured step times agree.  None (default)
            disables the emulation.

    Truthiness follows ``enabled`` so legacy ``if config.elastic:``
    checks keep their meaning against the grouped field.
    """

    enabled: bool = False
    checkpoint_every: int = 1
    fault_plan: Optional[FaultPlan] = None
    emulate_nic_bw: Optional[float] = None

    def __bool__(self) -> bool:
        return self.enabled

    def __post_init__(self):
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.fault_plan is not None and not self.enabled:
            raise ValueError(
                "fault_plan requires elastic=True: a plain runner cannot "
                "recover from injected failures"
            )
        if self.emulate_nic_bw is not None and self.emulate_nic_bw <= 0:
            raise ValueError("emulate_nic_bw must be > 0 bytes/second")


@dataclass
class ServeConfig:
    """Serving-plane knobs handed to the request batcher.

    Attributes:
        max_batch: most requests one batch coalesces; a full batch
            launches immediately.
        max_delay_ms: longest a waiting request is held open for
            batch-mates before its (possibly partial) batch launches.
    """

    max_batch: int = 8
    max_delay_ms: float = 2.0

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError("serve_max_batch must be >= 1")
        if self.max_delay_ms < 0:
            raise ValueError("serve_max_delay_ms must be >= 0")


@dataclass
class AutopilotConfig:
    """Online-replanning controller knobs (see :mod:`repro.autopilot`).

    Attributes:
        enabled: attach an :class:`~repro.autopilot.AutopilotController`
            to the runner (requires an elastic runner).
        window_steps: telemetry window length in steps; the controller
            refits and reconsiders the plan once per closed window.
        hysteresis: a candidate must beat the incumbent's predicted
            step time by this fraction before a migration is proposed.
        cooldown_windows: windows to hold after a migration before the
            next one may be proposed; a switch back to the plan just
            replaced is refused for twice this many windows (the
            no-flapping contract).
        backoff_factor: cooldown multiplier applied after a failed or
            non-improving migration.
        max_backoff_windows: cap on the grown cooldown.
        plan_families: candidate architectures the planner enumerates.
        fusion_buffers_mb: candidate fusion bucket caps.
        codecs: candidate compression specs (None = exact) tried on
            collective architectures.
        compression_ratio: top-k keep fraction used by candidate codecs.
        consider_rescale: also enumerate smaller replica counts that
            drop degraded machines from the fleet.
        min_machines: floor for replica-count candidates.
    """

    enabled: bool = False
    window_steps: int = 8
    hysteresis: float = 0.10
    cooldown_windows: int = 2
    backoff_factor: float = 2.0
    max_backoff_windows: int = 16
    plan_families: Tuple[str, ...] = ("hybrid", "ar")
    fusion_buffers_mb: Tuple[float, ...] = (1.0, 4.0, 16.0)
    codecs: Tuple[Optional[str], ...] = (None, "fp16", "topk", "topk+fp16")
    compression_ratio: float = 0.1
    consider_rescale: bool = True
    min_machines: int = 1

    def __post_init__(self):
        if self.window_steps < 1:
            raise ValueError("window_steps must be >= 1")
        if self.hysteresis < 0:
            raise ValueError("hysteresis must be >= 0")
        if self.cooldown_windows < 0:
            raise ValueError("cooldown_windows must be >= 0")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_backoff_windows < self.cooldown_windows:
            raise ValueError(
                "max_backoff_windows must be >= cooldown_windows"
            )
        for family in self.plan_families:
            if family not in ("hybrid", "ps", "opt_ps", "ar"):
                raise ValueError(f"unknown plan family {family!r}")
        if not self.plan_families:
            raise ValueError("plan_families must name at least one family")
        if any(mb <= 0 for mb in self.fusion_buffers_mb):
            raise ValueError("fusion_buffers_mb entries must be > 0")
        for codec in self.codecs:
            if codec is not None:
                from repro.comm.compression import parse_spec

                parse_spec(codec)
        if not 0.0 < self.compression_ratio <= 1.0:
            raise ValueError("compression_ratio must be in (0, 1]")
        if self.min_machines < 1:
            raise ValueError("min_machines must be >= 1")


# Legacy flat kwarg -> (grouped field, sub-config attribute).
_LEGACY_KWARGS: Dict[str, Tuple[str, str]] = {
    "fusion": ("comm", "fusion"),
    "fusion_buffer_mb": ("comm", "fusion_buffer_mb"),
    "compression": ("comm", "compression"),
    "compression_ratio": ("comm", "compression_ratio"),
    "backend": ("comm", "backend"),
    "transport": ("comm", "transport"),
    "elastic": ("elastic", "enabled"),
    "checkpoint_every": ("elastic", "checkpoint_every"),
    "fault_plan": ("elastic", "fault_plan"),
    "serve_max_batch": ("serve", "max_batch"),
    "serve_max_delay_ms": ("serve", "max_delay_ms"),
}

_GROUP_TYPES = {
    "comm": CommConfig,
    "elastic": ElasticConfig,
    "serve": ServeConfig,
    "autopilot": AutopilotConfig,
}


@dataclass(init=False)
class ParallaxConfig:
    """Optional knobs of ``get_runner`` (paper section 4.1), grouped.

    Search/placement knobs stay top-level; everything plane-specific
    lives in a sub-config:

    * ``comm`` -- :class:`CommConfig` (fusion, compression, backend,
      transport).
    * ``elastic`` -- :class:`ElasticConfig` (checkpointing, fault
      schedule, NIC-degradation emulation).  Truthy iff enabled.
    * ``serve`` -- :class:`ServeConfig` (request batching).
    * ``autopilot`` -- :class:`AutopilotConfig` (online replanning).

    Top-level attributes:
        architecture: "hybrid" (Parallax), "ps", "opt_ps", or "ar" --
            mostly for ablations; the paper's Parallax is "hybrid".
        local_aggregation: aggregate gradients per machine before pushing.
        smart_placement: colocate aggregation/update ops with their
            variable's server.
        average_dense / average_sparse: aggregation method per variable
            type (mean when True, sum when False).
        search_partitions: run the Equation-1 partition search.
        sample_iterations / sample_warmup: iterations measured (after
            discarding warmup) per sampled partition count.
        max_partitions: upper bound for the search.
        sparse_as_dense_threshold: sparse variables whose *measured*
            alpha reaches this are synchronized as dense via AllReduce
            (section 3.1's near-1 refinement).  Set > 1 to disable.
        alpha_measure_batches: batches used to measure per-variable alpha
            (0 disables measurement and the threshold rule).
        plan_cache_size: LRU cap on compiled plans per session.
        verify_plans: run the static plan verifier on the transformed
            graph and refuse to train on a plan with a finding.
        save_path: if set, ``runner.save()`` writes variables here by
            default.
        seed: variable-initialization seed.

    The pre-grouping flat kwargs (``fusion=``, ``compression=``,
    ``backend=``, ``elastic=True``, ``checkpoint_every=``,
    ``serve_max_batch=``, ...) are accepted with a ``DeprecationWarning``
    and forwarded to the grouped fields; matching read properties
    (``config.fusion`` etc.) warn and forward likewise.
    """

    architecture: str = "hybrid"
    local_aggregation: bool = True
    smart_placement: bool = True
    average_dense: bool = True
    average_sparse: bool = True
    search_partitions: bool = True
    sample_iterations: int = 2
    sample_warmup: int = 1
    max_partitions: int = 512
    sparse_as_dense_threshold: float = 0.95
    alpha_measure_batches: int = 2
    plan_cache_size: int = 32
    verify_plans: bool = False
    save_path: Optional[str] = None
    seed: int = 0
    comm: CommConfig = field(default_factory=CommConfig)
    elastic: ElasticConfig = field(default_factory=ElasticConfig)
    serve: ServeConfig = field(default_factory=ServeConfig)
    autopilot: AutopilotConfig = field(default_factory=AutopilotConfig)

    def __init__(
        self,
        architecture: str = "hybrid",
        local_aggregation: bool = True,
        smart_placement: bool = True,
        average_dense: bool = True,
        average_sparse: bool = True,
        search_partitions: bool = True,
        sample_iterations: int = 2,
        sample_warmup: int = 1,
        max_partitions: int = 512,
        sparse_as_dense_threshold: float = 0.95,
        alpha_measure_batches: int = 2,
        plan_cache_size: int = 32,
        verify_plans: bool = False,
        save_path: Optional[str] = None,
        seed: int = 0,
        comm: Optional[CommConfig] = None,
        elastic: Optional[ElasticConfig] = None,
        serve: Optional[ServeConfig] = None,
        autopilot: Optional[AutopilotConfig] = None,
        **legacy,
    ):
        self.architecture = architecture
        self.local_aggregation = local_aggregation
        self.smart_placement = smart_placement
        self.average_dense = average_dense
        self.average_sparse = average_sparse
        self.search_partitions = search_partitions
        self.sample_iterations = sample_iterations
        self.sample_warmup = sample_warmup
        self.max_partitions = max_partitions
        self.sparse_as_dense_threshold = sparse_as_dense_threshold
        self.alpha_measure_batches = alpha_measure_batches
        self.plan_cache_size = plan_cache_size
        self.verify_plans = verify_plans
        self.save_path = save_path
        self.seed = seed

        # ``elastic`` carried a bool before the grouping; route it
        # through the shim path so both spellings stay valid.
        if isinstance(elastic, bool):
            legacy["elastic"] = elastic
            elastic = None

        shimmed: Dict[str, Dict[str, object]] = {
            "comm": {}, "elastic": {}, "serve": {},
        }
        for key, value in legacy.items():
            try:
                group, name = _LEGACY_KWARGS[key]
            except KeyError:
                raise TypeError(
                    "ParallaxConfig() got an unexpected keyword argument "
                    f"{key!r}"
                ) from None
            warnings.warn(
                f"ParallaxConfig({key}=...) is deprecated; use "
                f"{group}={_GROUP_TYPES[group].__name__}({name}=...)",
                DeprecationWarning, stacklevel=2,
            )
            shimmed[group][name] = value

        provided = {"comm": comm, "elastic": elastic, "serve": serve}
        for group, flat in shimmed.items():
            if flat and provided[group] is not None:
                raise TypeError(
                    f"pass either the grouped {group}= config or the "
                    f"legacy flat kwargs {sorted(flat)}, not both"
                )
        for group, value in provided.items():
            if value is not None and not isinstance(value,
                                                    _GROUP_TYPES[group]):
                raise TypeError(
                    f"{group}= expects {_GROUP_TYPES[group].__name__}, "
                    f"got {value!r}"
                )
        if autopilot is not None and not isinstance(autopilot,
                                                    AutopilotConfig):
            raise TypeError(
                f"autopilot= expects AutopilotConfig, got {autopilot!r}"
            )

        # ``is not None`` rather than truthiness: a disabled
        # ElasticConfig is falsy but still an explicit grouped value.
        self.comm = (comm if comm is not None
                     else CommConfig(**shimmed["comm"]))
        self.elastic = (elastic if elastic is not None
                        else ElasticConfig(**shimmed["elastic"]))
        self.serve = (serve if serve is not None
                      else ServeConfig(**shimmed["serve"]))
        self.autopilot = (autopilot if autopilot is not None
                          else AutopilotConfig())
        self.__post_init__()

    def __post_init__(self):
        if self.architecture not in ("hybrid", "ps", "opt_ps", "ar"):
            raise ValueError(
                f"unknown architecture {self.architecture!r}; expected "
                "hybrid, ps, opt_ps, or ar"
            )
        if self.sample_iterations < 1:
            raise ValueError("sample_iterations must be >= 1")
        if self.sample_warmup < 0:
            raise ValueError("sample_warmup must be >= 0")
        if self.max_partitions < 1:
            raise ValueError("max_partitions must be >= 1")
        if self.alpha_measure_batches < 0:
            raise ValueError("alpha_measure_batches must be >= 0")
        if self.plan_cache_size < 1:
            raise ValueError("plan_cache_size must be >= 1")
        # Cross-group checks: each sub-config validates itself on
        # construction, but these couple a sub-config to a top-level
        # field or to another group.
        if (self.comm.compression is not None
                and self.architecture in ("ps", "opt_ps")):
            raise ValueError(
                "compression applies to collective synchronization; "
                f"the {self.architecture!r} architecture has no "
                "collective path"
            )
        if self.autopilot.enabled and not self.elastic.enabled:
            raise ValueError(
                "autopilot requires an elastic runner: set "
                "elastic=ElasticConfig(enabled=True)"
            )


def _deprecated_read_alias(flat: str, group: str, name: str) -> property:
    def getter(self):
        warnings.warn(
            f"ParallaxConfig.{flat} is deprecated; read "
            f"config.{group}.{name}",
            DeprecationWarning, stacklevel=2,
        )
        return getattr(getattr(self, group), name)

    getter.__name__ = flat
    getter.__doc__ = f"Deprecated alias for ``{group}.{name}``."
    return property(getter)


for _flat, (_group, _name) in _LEGACY_KWARGS.items():
    if _flat == "elastic":
        # The grouped field keeps the name; ElasticConfig.__bool__
        # preserves legacy truthiness checks.
        continue
    setattr(ParallaxConfig, _flat,
            _deprecated_read_alias(_flat, _group, _name))
del _flat, _group, _name


def graph_plan_builder(
    config: ParallaxConfig,
    overrides_for: Optional[Callable[[object], Dict[str, bool]]] = None,
) -> Callable:
    """Return a ``graph -> GraphSyncPlan`` builder for *config*.

    The builder applies the config's architecture and communication
    knobs to any graph with gradient info; *overrides_for* maps a graph
    to its measured sparse-as-dense decisions (re-keyed onto that
    graph's own shard names).  ``get_runner`` hands the returned builder
    to :class:`~repro.core.elastic.ElasticRunner` so rescales rebuild
    congruent plans, and the autopilot builds per-candidate variants of
    it to migrate between plan families at a fixed partition count.
    """
    from repro.core.transform.plan import (
        ar_graph_plan,
        hybrid_graph_plan,
        ps_graph_plan,
    )

    def build(graph):
        comm = config.comm
        if config.architecture == "hybrid":
            overrides = overrides_for(graph) if overrides_for else {}
            return hybrid_graph_plan(
                graph,
                local_aggregation=config.local_aggregation,
                smart_placement=config.smart_placement,
                average_dense=config.average_dense,
                average_sparse=config.average_sparse,
                sparse_as_dense=overrides,
                fusion=comm.fusion,
                fusion_buffer_mb=comm.fusion_buffer_mb,
                compression=comm.compression,
                compression_ratio=comm.compression_ratio,
            )
        if config.architecture == "ps":
            return ps_graph_plan(graph, local_aggregation=False,
                                 smart_placement=False,
                                 average_dense=config.average_dense,
                                 average_sparse=config.average_sparse)
        if config.architecture == "opt_ps":
            return ps_graph_plan(graph, local_aggregation=True,
                                 smart_placement=True,
                                 average_dense=config.average_dense,
                                 average_sparse=config.average_sparse,
                                 name="opt_ps")
        return ar_graph_plan(graph, average_dense=config.average_dense,
                             average_sparse=config.average_sparse,
                             fusion=comm.fusion,
                             fusion_buffer_mb=comm.fusion_buffer_mb,
                             compression=comm.compression,
                             compression_ratio=comm.compression_ratio)

    return build
