"""The graph transformation: single-GPU graph -> distributed graph.

Follows the paper's section 4.3 recipe:

1. **Identify** main computation (ancestors of the loss), variables, and
   their gradients (via the MetaGraphDef-style ``gradient_info`` map).
2. **Place** PS variables on servers (greedy balanced placement, one
   server per machine) and create them in the new graph on server devices;
   AllReduce variables get one replica per GPU.
3. **Replicate** the main computation once per GPU, rewriting reads of PS
   sparse variables into server-side ``shard_lookup`` ops plus a
   worker-side ``stitch`` (TF's dynamic_partition/gather/dynamic_stitch
   pattern).
4. **Differentiate** each replica's loss on the transformed graph (so
   per-shard sparse gradients exist as worker-side graph nodes).
5. **Aggregate and update**: AllReduce/AllGatherv ops between gradient
   producers and per-replica update ops for collective variables;
   per-machine ``local_agg`` and per-server ``global_agg`` plus
   server-placed update ops for PS variables.

The result is one graph containing every replica's ops with explicit
device placement -- executable by the functional engine and inspectable
by tests.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.plan import SyncMethod, fusion_buckets
from repro.cluster.spec import ClusterSpec
from repro.comm.compression import (
    EF_RESIDUAL_SUFFIX,
    is_residual_name,
    spec_uses_error_feedback,
    wire_fraction,
)
from repro.comm.ps import place_variables
from repro.core.transform import comm_ops  # noqa: F401  (registers kernels)
from repro.core.transform.plan import GraphSyncPlan
from repro.graph.device import DeviceSpec
from repro.graph.gradients import gradients
from repro.graph.graph import Graph, Operation, Tensor
from repro.graph.variables import Variable
from repro.nn.optimizers import Optimizer
from repro.tensor.dense import TensorSpec


@dataclass
class TransformedGraph:
    """The distributed graph plus everything a runner needs to drive it."""

    graph: Graph
    cluster: ClusterSpec
    plan: GraphSyncPlan
    replica_losses: List[Tensor]
    train_op: Tensor
    # base placeholder name -> per-replica placeholder names
    placeholder_names: Dict[str, List[str]]
    # original variable name -> server machine (PS variables only)
    ps_placement: Dict[str, int]
    # original variable name -> per-replica variable names (AR variables)
    replica_variables: Dict[str, List[str]]
    # asynchronous mode only: one train op per worker replica
    replica_train_ops: Optional[List[Tensor]] = None
    # compression only: error-feedback residual base name (e.g.
    # "softmax/kernel/ef_residual") -> per-replica variable names, in
    # replica order.  Residuals are per-replica state -- every replica
    # compresses its own gradient -- so their logical (checkpoint) value
    # is the SUM across replicas, not replica 0's copy.
    residual_variables: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def num_replicas(self) -> int:
        return self.cluster.total_gpus

    # -- serialization ---------------------------------------------------
    # Tensors pickle as op names resolved against the (flat-pickling)
    # graph: the object graph behind a Tensor is arbitrarily deep, and the
    # multiprocess backend ships TransformedGraph to every worker.
    def __getstate__(self) -> dict:
        return {
            "graph": self.graph,
            "cluster": self.cluster,
            "plan": self.plan,
            "replica_losses": [t.name for t in self.replica_losses],
            "train_op": self.train_op.name,
            "placeholder_names": self.placeholder_names,
            "ps_placement": self.ps_placement,
            "replica_variables": self.replica_variables,
            "replica_train_ops": (
                None if self.replica_train_ops is None
                else [t.name for t in self.replica_train_ops]
            ),
            "residual_variables": self.residual_variables,
        }

    def __setstate__(self, state: dict) -> None:
        graph = state["graph"]
        self.graph = graph
        self.cluster = state["cluster"]
        self.plan = state["plan"]
        self.replica_losses = [graph.get_op(n).output
                               for n in state["replica_losses"]]
        self.train_op = graph.get_op(state["train_op"]).output
        self.placeholder_names = state["placeholder_names"]
        self.ps_placement = state["ps_placement"]
        self.replica_variables = state["replica_variables"]
        self.replica_train_ops = (
            None if state["replica_train_ops"] is None
            else [graph.get_op(n).output for n in state["replica_train_ops"]]
        )
        self.residual_variables = state.get("residual_variables", {})

    @property
    def logical_variable_names(self) -> Dict[str, str]:
        """Base variable name -> graph name of its canonical copy.

        The logical state of a transformed graph deduplicates replicated
        variables: replica 0's copy stands for every AR replica (they are
        bit-identical under synchronous training), and PS variables are
        their own canonical copy.  This is the name set checkpoints carry
        and the elastic runtime migrates across rescales.
        """
        from repro.graph.session import split_replica_prefix

        out: Dict[str, str] = {}
        for name in self.graph.variables:
            replica, base = split_replica_prefix(name)
            if replica is None:
                out[base] = name
            elif replica == 0:
                out[base] = name
        return out


def _find_optimizer(graph: Graph) -> Optimizer:
    optimizers = graph.collections.get("optimizer", [])
    if not optimizers:
        raise ValueError(
            "the single-GPU graph has no optimizer; call opt.update(...) "
            "before transforming"
        )
    return optimizers[-1]


def _loss_subgraph(loss: Tensor) -> List[Operation]:
    """Main-computation ops in dependency order (paper: the ancestors of
    the gradients, i.e. everything the loss depends on).  Uses the graph's
    memoized order, shared with autodiff and compiled execution plans."""
    return loss.graph.cached_topo_sort([loss.op])


class _ReplicaBuilder:
    """Copies the forward subgraph into the new graph for one replica."""

    def __init__(self, new_graph: Graph, cluster: ClusterSpec,
                 plan: GraphSyncPlan, ps_placement: Dict[str, int],
                 ps_reads: Dict[str, Tensor], replica: int):
        self.g = new_graph
        self.cluster = cluster
        self.plan = plan
        self.ps_placement = ps_placement
        self.ps_reads = ps_reads
        self.replica = replica
        machine = cluster.machine_of_worker(replica)
        self.device = DeviceSpec.gpu(machine, replica % cluster.gpus_per_machine)
        self.mapping: Dict[str, Tensor] = {}  # old op name -> new tensor
        self.replica_vars: Dict[str, Variable] = {}
        self.placeholders: Dict[str, str] = {}

    def _name(self, base: str) -> str:
        return f"rep{self.replica}/{base}"

    def copy(self, ops_in_order: List[Operation], src_graph: Graph) -> None:
        for op in ops_in_order:
            if op.name in self.mapping:
                continue
            handler = getattr(self, f"_copy_{op.op_type}", None)
            if handler is not None:
                self.mapping[op.name] = handler(op, src_graph)
            else:
                self.mapping[op.name] = self._copy_generic(op)

    # -- op handlers -----------------------------------------------------
    def _copy_generic(self, op: Operation) -> Tensor:
        new_op = self.g.add_op(
            op.op_type,
            [self.mapping[t.op.name] for t in op.inputs],
            op.output.spec,
            name=self._name(op.name),
            attrs=dict(op.attrs),
            device=self.device,
        )
        return new_op.output

    def _copy_placeholder(self, op: Operation, src_graph: Graph) -> Tensor:
        new_op = self.g.add_op(
            "placeholder", [], op.output.spec,
            name=self._name(op.name), device=self.device,
        )
        self.placeholders[op.name] = new_op.name
        return new_op.output

    def _copy_constant(self, op: Operation, src_graph: Graph) -> Tensor:
        return self._copy_generic(op)

    def _copy_read_var(self, op: Operation, src_graph: Graph) -> Tensor:
        var_name = op.attrs["variable"]
        method = self.plan.method_of(var_name)
        if method is SyncMethod.PS:
            return self.ps_reads[var_name]
        # Collective variable: this replica holds its own copy.
        src_var = src_graph.variables[var_name]
        replica_var = Variable(
            self._name(var_name), src_var.shape,
            initializer=src_var.initializer,
            trainable=src_var.trainable,
            graph=self.g, device=self.device,
        )
        self.replica_vars[var_name] = replica_var
        return replica_var.tensor

    def _copy_gather(self, op: Operation, src_graph: Graph) -> Tensor:
        """A gather reading a PS variable becomes a server-side lookup."""
        params_op = op.inputs[0].op
        if params_op.op_type != "read_var":
            return self._copy_generic(op)
        var_name = params_op.attrs["variable"]
        if self.plan.method_of(var_name) is not SyncMethod.PS:
            return self._copy_generic(op)
        ids = self.mapping[op.inputs[1].op.name]
        shard_read = self.ps_reads[var_name]
        rows = src_graph.variables[var_name].shape[0]
        row_shape = tuple(src_graph.variables[var_name].shape[1:])
        server = self.ps_placement[var_name]
        lookup = self.g.add_op(
            "shard_lookup",
            [shard_read, ids],
            op.output.spec,
            name=self._name(f"{op.name}/lookup"),
            attrs={"lo": 0, "hi": rows, "row_shape": row_shape},
            device=DeviceSpec.cpu(server),
        )
        # A single shard returns rows in id order; reshape to the gather's
        # output shape on the worker.
        reshaped = self.g.add_op(
            "reshape", [lookup.output], op.output.spec,
            name=self._name(f"{op.name}/rows"),
            attrs={"shape": op.output.spec.shape},
            device=self.device,
        )
        return reshaped.output

    def _copy_part_gather(self, op: Operation, src_graph: Graph) -> Tensor:
        """Partitioned lookup: per-shard server gathers + worker stitch."""
        *shard_tensors, ids_tensor = op.inputs
        shard_names = [t.op.attrs["variable"] for t in shard_tensors]
        methods = {self.plan.method_of(n) for n in shard_names}
        if methods != {SyncMethod.PS}:
            return self._copy_generic(op)
        ids = self.mapping[ids_tensor.op.name]
        offsets = list(op.attrs["offsets"])
        row_shape = tuple(src_graph.variables[shard_names[0]].shape[1:])
        lookups = []
        for p, name in enumerate(shard_names):
            lo, hi = offsets[p], offsets[p + 1]
            server = self.ps_placement[name]
            lookup = self.g.add_op(
                "shard_lookup",
                [self.ps_reads[name], ids],
                TensorSpec((0,) + row_shape),  # dynamic row count
                name=self._name(f"{op.name}/lookup{p}"),
                attrs={"lo": lo, "hi": hi, "row_shape": row_shape},
                device=DeviceSpec.cpu(server),
            )
            lookups.append(lookup.output)
        stitch = self.g.add_op(
            "stitch",
            [ids] + lookups,
            op.output.spec,
            name=self._name(f"{op.name}/stitch"),
            attrs={"offsets": offsets, "row_shape": row_shape},
            device=self.device,
        )
        return stitch.output


def transform_graph(
    single_graph: Graph,
    loss: Tensor,
    cluster: ClusterSpec,
    plan: GraphSyncPlan,
    optimizer: Optional[Optimizer] = None,
    verify: Optional[bool] = None,
) -> TransformedGraph:
    """Rewrite *single_graph* into a distributed graph for *cluster*.

    Args:
        single_graph: the user's single-GPU graph; ``gradients`` and
            ``opt.update`` must already have been called on it.
        loss: the scalar loss tensor in the single-GPU graph.
        cluster: machines/GPUs to distribute over.
        plan: per-variable synchronization methods plus optimizations.
        optimizer: defaults to the optimizer recorded in the graph.
        verify: run the static plan verifier (:mod:`repro.analysis`)
            over the result and raise
            :class:`~repro.analysis.report.PlanVerificationError` on any
            finding.  ``None`` (the default) defers to the
            ``REPRO_VERIFY_PLANS`` environment variable, which the test
            suite sets -- production transforms skip the pass unless
            opted in (see ``ParallaxConfig.verify_plans``).
    """
    if loss.graph is not single_graph:
        raise ValueError("loss does not belong to the given graph")
    opt = optimizer if optimizer is not None else _find_optimizer(single_graph)
    num_replicas = cluster.total_gpus

    # Every trainable variable the plan covers must have a gradient.
    for var_name in plan.methods:
        if var_name not in single_graph.gradient_info:
            raise ValueError(
                f"variable {var_name!r} has no recorded gradient; run "
                "gradients() on the single-GPU graph first"
            )

    # ---- PS placement ---------------------------------------------------
    ps_vars = [name for name in plan.ps_variables]
    ps_placement = place_variables(
        [(name, single_graph.variables[name].nbytes) for name in ps_vars],
        cluster.num_machines,
    )

    new_graph = Graph()
    ps_reads: Dict[str, Tensor] = {}
    ps_new_vars: Dict[str, Variable] = {}
    with new_graph.as_default():
        for name in ps_vars:
            src_var = single_graph.variables[name]
            server = ps_placement[name]
            new_var = Variable(
                name, src_var.shape,
                initializer=src_var.initializer,
                trainable=src_var.trainable,
                graph=new_graph,
                device=DeviceSpec.cpu(server),
            )
            ps_new_vars[name] = new_var
            ps_reads[name] = new_var.tensor

    # ---- replicate main computation and differentiate -------------------
    forward_ops = _loss_subgraph(loss)
    replica_losses: List[Tensor] = []
    replica_grads: List[Dict[str, Tensor]] = []  # var name -> grad tensor
    replica_variables: Dict[str, List[str]] = {}
    placeholder_names: Dict[str, List[str]] = {}
    builders: List[_ReplicaBuilder] = []

    for r in range(num_replicas):
        builder = _ReplicaBuilder(new_graph, cluster, plan, ps_placement,
                                  ps_reads, r)
        with new_graph.as_default(), new_graph.device(builder.device):
            builder.copy(forward_ops, single_graph)
            loss_r = builder.mapping[loss.op.name]
            grad_vars = [
                builder.replica_vars.get(name) or ps_new_vars[name]
                for name in plan.methods
            ]
            gvs = gradients(loss_r, grad_vars)
        builders.append(builder)
        replica_losses.append(loss_r)
        grads_by_original: Dict[str, Tensor] = {}
        for grad_tensor, var in gvs:
            original = _strip_replica(var.name, r)
            grads_by_original[original] = grad_tensor
        replica_grads.append(grads_by_original)
        for base, new_name in builder.placeholders.items():
            placeholder_names.setdefault(base, []).append(new_name)
        for original, var in builder.replica_vars.items():
            replica_variables.setdefault(original, []).append(var.name)

    # ---- aggregation + updates ------------------------------------------
    machines = [cluster.machine_of_worker(r) for r in range(num_replicas)]
    update_ops: List[Operation] = []
    per_replica_updates: Dict[int, List[Operation]] = {
        r: [] for r in range(num_replicas)
    }
    fused_ar_vars: List[str] = []
    with new_graph.as_default():
        for var_name, method in plan.methods.items():
            grads = [replica_grads[r][var_name] for r in range(num_replicas)]
            if method is SyncMethod.ALLREDUCE and plan.fusion:
                # Collected into size-capped buckets below; order is the
                # deterministic plan order, so bucketing is reproducible.
                fused_ar_vars.append(var_name)
                continue
            if method is SyncMethod.PS and plan.asynchronous:
                for r in range(num_replicas):
                    update = opt.build_update(
                        ps_new_vars[var_name], grads[r],
                        device=DeviceSpec.cpu(ps_placement[var_name]),
                    )
                    update.attrs["replica"] = r
                    update_ops.append(update)
                    per_replica_updates[r].append(update)
            elif method is SyncMethod.PS:
                update_ops.append(
                    _build_ps_update(new_graph, cluster, plan, opt,
                                     ps_new_vars[var_name],
                                     ps_placement[var_name], grads, machines)
                )
            else:
                update_ops.extend(
                    _build_collective_updates(new_graph, cluster, plan, opt,
                                              var_name, method, grads,
                                              machines, builders)
                )
        if fused_ar_vars:
            update_ops.extend(
                _build_fused_collective_updates(new_graph, plan, opt,
                                                fused_ar_vars, replica_grads,
                                                machines, builders)
            )
        train_op = _group(new_graph, update_ops, "train_op")
        replica_train_ops = None
        if plan.asynchronous:
            replica_train_ops = [
                _group(new_graph, per_replica_updates[r], f"train_op/rep{r}")
                for r in range(num_replicas)
            ]

    # Error-feedback residuals created by the compress stage, grouped by
    # base name in replica order (the checkpoint/migration contract sums
    # them; see TransformedGraph.residual_variables).
    from repro.graph.session import split_replica_prefix

    residual_variables: Dict[str, List[str]] = {}
    for name in new_graph.variables:
        if not is_residual_name(name):
            continue
        replica, base = split_replica_prefix(name)
        residual_variables.setdefault(base, []).append((replica, name))
    residual_variables = {
        base: [n for _, n in sorted(entries)]
        for base, entries in residual_variables.items()
    }

    transformed = TransformedGraph(
        graph=new_graph,
        cluster=cluster,
        plan=plan,
        replica_losses=replica_losses,
        train_op=train_op,
        placeholder_names=placeholder_names,
        ps_placement=ps_placement,
        replica_variables=replica_variables,
        replica_train_ops=replica_train_ops,
        residual_variables=residual_variables,
    )

    if verify is None:
        verify = os.environ.get("REPRO_VERIFY_PLANS", "") not in ("", "0")
    if verify:
        # Imported lazily: the analysis package depends on the executor
        # and backend layers, which in turn import this module.
        from repro.analysis import PlanVerificationError, verify_plan

        report = verify_plan(transformed)
        if not report.ok:
            raise PlanVerificationError(report)
    return transformed


def _strip_replica(name: str, replica: int) -> str:
    prefix = f"rep{replica}/"
    return name[len(prefix):] if name.startswith(prefix) else name


def _group(graph: Graph, ops_list: List[Operation], name: str) -> Tensor:
    tensors = [op.output for op in ops_list]
    op = graph.add_op("group", tensors, TensorSpec(()), name=name)
    return op.output


def _grad_is_sparse(grad: Tensor) -> bool:
    return bool(grad.op.attrs.get("is_sparse", False))


def _build_ps_update(
    new_graph: Graph,
    cluster: ClusterSpec,
    plan: GraphSyncPlan,
    opt: Optimizer,
    var: Variable,
    server: int,
    grads: List[Tensor],
    machines: List[int],
) -> Operation:
    """Local aggregation per machine, global aggregation on the server (or
    the chief machine without smart placement), update on the server."""
    sparse = _grad_is_sparse(grads[0])
    num_workers = len(grads)

    contributions: List[Tensor] = []
    if plan.local_aggregation and cluster.gpus_per_machine > 1:
        for m in range(cluster.num_machines):
            local = [g for g, mach in zip(grads, machines) if mach == m]
            if not local:
                continue
            if len(local) == 1:
                contributions.append(local[0])
                continue
            agg = new_graph.add_op(
                "local_agg", local, local[0].spec,
                name=f"local_agg/{var.name}/m{m}",
                attrs={"is_sparse": sparse},
                device=DeviceSpec.cpu(m),
            )
            contributions.append(agg.output)
    else:
        contributions = list(grads)

    agg_machine = server if plan.smart_placement else 0
    global_agg = new_graph.add_op(
        "global_agg", contributions, grads[0].spec,
        name=f"global_agg/{var.name}",
        attrs={
            "is_sparse": sparse,
            "average": plan.average_for(sparse),
            "num_workers": num_workers,
        },
        device=DeviceSpec.cpu(agg_machine),
    )
    return opt.build_update(var, global_agg.output,
                            device=DeviceSpec.cpu(server))


def _densified_grad(new_graph: Graph, var_name: str, grad: Tensor,
                    replica: int, device: DeviceSpec) -> Tensor:
    """Sparse-as-dense path: densify an IndexedSlices gradient in place."""
    if not _grad_is_sparse(grad):
        return grad
    dense = new_graph.add_op(
        "densify", [grad], grad.spec,
        name=f"densify/{var_name}/rep{replica}",
        device=device,
    )
    return dense.output


def _build_compress_stage(
    new_graph: Graph,
    plan: GraphSyncPlan,
    group: str,
    inputs: List[Tensor],
    devices: List[DeviceSpec],
) -> List[Tensor]:
    """Insert the compress leg of compress -> communicate -> decompress.

    One ``grad_compress`` op per replica, placed on the replica's device
    (so the multiprocess backend runs it in the owning worker).  Codecs
    that drop mass (top-k) additionally get a per-replica error-feedback
    residual variable, ``rep<r>/<group>/ef_residual`` -- a plain graph
    variable, which is what makes the residual pickle to workers, ride
    checkpoints, and re-shard through the elastic migration like any
    optimizer slot.
    """
    from repro.graph.variables import zeros_initializer

    needs_residual = spec_uses_error_feedback(plan.compression)
    payloads: List[Tensor] = []
    for r, grad in enumerate(inputs):
        attrs = {"codec": plan.compression, "ratio": plan.compression_ratio}
        if needs_residual:
            residual = Variable(
                f"rep{r}/{group}{EF_RESIDUAL_SUFFIX}", grad.spec.shape,
                initializer=zeros_initializer, trainable=False,
                graph=new_graph, device=devices[r],
            )
            attrs["residual"] = residual.name
        cop = new_graph.add_op(
            "grad_compress", [grad], grad.spec,
            name=f"compress/{group}/rep{r}", attrs=attrs,
            device=devices[r],
        )
        payloads.append(cop.output)
    return payloads


def _build_fused_collective_updates(
    new_graph: Graph,
    plan: GraphSyncPlan,
    opt: Optimizer,
    var_names: List[str],
    replica_grads: List[Dict[str, Tensor]],
    machines: List[int],
    builders: List["_ReplicaBuilder"],
) -> List[Operation]:
    """Bucketed (fused) dense AllReduce: concat -> collective -> split.

    The Horovod tensor-fusion idea on the functional plane: AllReduce
    variables are packed, in deterministic plan order, into
    ``fusion_buffer_mb``-capped buckets.  Each replica flattens and
    concatenates its bucket's gradients, one ``fused_allreduce`` per
    replica reduces the packed buffer in a single ring pass (one fused
    message per ring step), and ``bucket_slice`` ops unpack each
    variable's reduced gradient for its per-replica update.  The packed
    ring layout (:func:`~repro.comm.allreduce.fused_segment_layout`)
    keeps results bit-identical to unfused per-variable collectives.
    """
    from repro.comm.allreduce import fused_segment_layout

    num_replicas = len(builders)
    average = plan.average_for(False)
    sizes = [
        int(np.prod(builders[0].replica_vars[name].shape))
        for name in var_names
    ]
    cap_bytes = plan.fusion_buffer_mb * 1024 * 1024
    # Buckets are capped by *on-wire* bytes: under compression a segment
    # occupies wire_fraction of its raw size, so the same buffer cap
    # holds proportionally more gradient elements per collective.
    if plan.compression is None:
        bucket_sizes = [s * 4.0 for s in sizes]
    else:
        fraction = wire_fraction(plan.compression, plan.compression_ratio)
        bucket_sizes = [s * 4.0 * fraction for s in sizes]
    updates: List[Operation] = []
    for b, bucket in enumerate(fusion_buckets(bucket_sizes, cap_bytes)):
        names = [var_names[i] for i in bucket]
        seg_sizes = [sizes[i] for i in bucket]
        total = sum(seg_sizes)
        group = f"fused/bucket{b}"
        buffers: List[Tensor] = []
        for r in range(num_replicas):
            device = builders[r].device
            flats = []
            for name, size in zip(names, seg_sizes):
                grad = _densified_grad(new_graph, name,
                                       replica_grads[r][name], r, device)
                flat = new_graph.add_op(
                    "reshape", [grad], TensorSpec((size,)),
                    name=f"fusion/{group}/flat/{name}/rep{r}",
                    attrs={"shape": (size,)},
                    device=device,
                )
                flats.append(flat.output)
            pack = new_graph.add_op(
                "concat", flats, TensorSpec((total,)),
                name=f"fusion/{group}/pack/rep{r}",
                attrs={"axis": 0},
                device=device,
            )
            buffers.append(pack.output)
        if plan.compression is not None:
            # Compressed buckets exchange payloads all-to-all (a sum of
            # top-k sets is not top-k, so there is no ring reduction);
            # the packed-ring permutation is irrelevant to them.
            buffers = _build_compress_stage(
                new_graph, plan, group, buffers,
                [builders[r].device for r in range(num_replicas)],
            )
            collective_type = "compressed_allreduce"
            layout_attrs: Dict[str, object] = {}
        else:
            perm, inv_perm, bounds = fused_segment_layout(seg_sizes,
                                                          num_replicas)
            collective_type = "fused_allreduce"
            # Shared read-only layout arrays (one copy per bucket).
            layout_attrs = {"perm": perm, "inv_perm": inv_perm,
                            "bounds": bounds}
        for r in range(num_replicas):
            device = builders[r].device
            collective = new_graph.add_op(
                collective_type, buffers, TensorSpec((total,)),
                name=f"{collective_type}/{group}/rep{r}",
                attrs={
                    "group": group,
                    "replica": r,
                    "machines": machines,
                    "average": average,
                    "is_sparse": False,
                    "segments": list(zip(names, seg_sizes)),
                    **layout_attrs,
                },
                device=device,
            )
            offset = 0
            for name, size in zip(names, seg_sizes):
                replica_var = builders[r].replica_vars[name]
                piece = new_graph.add_op(
                    "bucket_slice", [collective.output],
                    TensorSpec(replica_var.shape),
                    name=f"fusion/{group}/unpack/{name}/rep{r}",
                    attrs={"lo": offset, "hi": offset + size,
                           "shape": tuple(replica_var.shape)},
                    device=device,
                )
                updates.append(
                    opt.build_update(replica_var, piece.output,
                                     device=device)
                )
                offset += size
    return updates


def _build_collective_updates(
    new_graph: Graph,
    cluster: ClusterSpec,
    plan: GraphSyncPlan,
    opt: Optimizer,
    var_name: str,
    method: SyncMethod,
    grads: List[Tensor],
    machines: List[int],
    builders: List["_ReplicaBuilder"],
) -> List[Operation]:
    """AllReduce or AllGatherv per replica, then per-replica updates."""
    sparse = _grad_is_sparse(grads[0])
    updates: List[Operation] = []
    inputs = grads
    if method is SyncMethod.ALLREDUCE and sparse:
        # Sparse-as-dense: densify each replica's IndexedSlices first
        # (the near-alpha-1 path of paper section 3.1).
        inputs = [_densified_grad(new_graph, var_name, g, r,
                                  builders[r].device)
                  for r, g in enumerate(grads)]
        sparse = False

    op_type = ("allreduce" if method is SyncMethod.ALLREDUCE
               else "allgatherv")
    specs = [t.spec for t in inputs]
    if plan.compression is not None:
        inputs = _build_compress_stage(
            new_graph, plan, var_name, inputs,
            [builders[r].device for r in range(len(grads))],
        )
        op_type = f"compressed_{op_type}"
    for r in range(len(grads)):
        replica_var = builders[r].replica_vars[var_name]
        collective = new_graph.add_op(
            op_type, inputs, specs[r],
            name=f"{op_type}/{var_name}/rep{r}",
            attrs={
                "group": var_name,
                "replica": r,
                "machines": machines,
                "average": plan.average_for(sparse),
                "is_sparse": sparse,
            },
            device=builders[r].device,
        )
        updates.append(
            opt.build_update(replica_var, collective.output,
                             device=builders[r].device)
        )
    return updates
