"""Graph-level synchronization plans and variable classification.

The performance plane plans over :class:`~repro.nn.profiles.ModelProfile`
inventories; the functional plane plans over the variables of an actual
graph.  This module provides the graph-side plan plus the classification
step Parallax performs after autodiff: a variable is *sparse* iff its
gradient tensor is IndexedSlices-typed (paper section 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cluster.plan import SyncMethod
from repro.comm.compression import parse_spec
from repro.graph.gradients import grad_tensor_is_sparse
from repro.graph.graph import Graph


def classify_variables(graph: Graph) -> Dict[str, bool]:
    """Variable name -> is_sparse, from recorded gradient info.

    Requires ``gradients()`` to have run on the graph (it populates
    ``graph.gradient_info``, the MetaGraphDef extension).  Variables
    without a recorded gradient (non-trainable, unused) are omitted.
    """
    result: Dict[str, bool] = {}
    for var_name, grad_name in graph.gradient_info.items():
        grad_op = graph.get_op(grad_name)
        result[var_name] = grad_tensor_is_sparse(grad_op.output)
    return result


@dataclass(frozen=True)
class GraphSyncPlan:
    """Synchronization decisions for the variables of one graph.

    ``average_dense`` / ``average_sparse`` mirror ParallaxConfig's
    per-type aggregation methods (paper section 4.1: "aggregation methods
    for each type of variable indicating whether to compute the average
    ... or to compute the sum instead").
    """

    name: str
    methods: Dict[str, SyncMethod]
    local_aggregation: bool = True
    smart_placement: bool = True
    average_dense: bool = True
    average_sparse: bool = True
    # Asynchronous PS training (paper section 2.1: "Parallax supports both
    # synchronous and asynchronous training").  Each worker applies its own
    # gradients to the servers without waiting for the others; only valid
    # when every variable uses the PS method (collectives are inherently
    # synchronous).
    asynchronous: bool = False
    # Tensor fusion (Horovod-style): pack dense AllReduce gradients into
    # size-capped buckets so each bucket rides one collective.  Fused
    # buckets are bit-identical to per-variable collectives (the packed
    # ring layout preserves every element's summation order).
    fusion: bool = False
    fusion_buffer_mb: float = 4.0
    # Gradient compression on the collective paths (dense AllReduce
    # buckets and sparse AllGatherv): None, "topk", "fp16", or
    # "topk+fp16".  Top-k keeps ``compression_ratio`` of the elements
    # (rows, for sparse gradients) and carries a per-replica
    # error-feedback residual; fp16 is stateless round-trip quantization.
    # PS variables are unaffected.
    compression: Optional[str] = None
    compression_ratio: float = 0.1

    def __post_init__(self):
        if self.fusion_buffer_mb <= 0:
            raise ValueError("fusion_buffer_mb must be > 0")
        if self.compression is not None:
            parse_spec(self.compression)  # raises on unknown specs
            if self.asynchronous:
                raise ValueError(
                    "compression applies to collective synchronization; "
                    "asynchronous PS training has no collective path"
                )
        if not 0.0 < self.compression_ratio <= 1.0:
            raise ValueError("compression_ratio must be in (0, 1]")
        if self.asynchronous:
            offenders = [
                name for name, m in self.methods.items()
                if m is not SyncMethod.PS
            ]
            if offenders:
                raise ValueError(
                    "asynchronous training requires the PS method for every "
                    f"variable; offending: {offenders[:3]}"
                )

    def average_for(self, is_sparse: bool) -> bool:
        return self.average_sparse if is_sparse else self.average_dense

    def method_of(self, var_name: str) -> SyncMethod:
        try:
            return self.methods[var_name]
        except KeyError:
            raise KeyError(
                f"plan {self.name!r} has no method for variable "
                f"{var_name!r}"
            ) from None

    @property
    def ps_variables(self):
        return [v for v, m in self.methods.items() if m is SyncMethod.PS]

    @property
    def has_ps(self) -> bool:
        return any(m is SyncMethod.PS for m in self.methods.values())

    @property
    def has_collective(self) -> bool:
        return any(m is not SyncMethod.PS for m in self.methods.values())


def hybrid_graph_plan(graph: Graph, local_aggregation: bool = True,
                      smart_placement: bool = True,
                      average_dense: bool = True,
                      average_sparse: bool = True,
                      sparse_as_dense: Dict[str, bool] = None,
                      fusion: bool = False,
                      fusion_buffer_mb: float = 4.0,
                      compression: Optional[str] = None,
                      compression_ratio: float = 0.1) -> GraphSyncPlan:
    """Parallax's rule: sparse -> PS, dense -> AllReduce (section 3.1).

    ``sparse_as_dense`` optionally names sparse variables whose measured
    alpha is near 1 and which should be AllReduced despite their sparse
    gradient type (the section 3.1 refinement).  ``fusion`` packs the
    AllReduce variables into ``fusion_buffer_mb``-capped buckets.
    ``compression`` compresses the collective (AllReduce) gradients; the
    PS path is unaffected.
    """
    overrides = sparse_as_dense or {}
    methods = {}
    for name, sparse in classify_variables(graph).items():
        if sparse and not overrides.get(name, False):
            methods[name] = SyncMethod.PS
        else:
            methods[name] = SyncMethod.ALLREDUCE
    return GraphSyncPlan("parallax", methods, local_aggregation,
                         smart_placement, average_dense, average_sparse,
                         fusion=fusion, fusion_buffer_mb=fusion_buffer_mb,
                         compression=compression,
                         compression_ratio=compression_ratio)


def ps_graph_plan(graph: Graph, local_aggregation: bool = False,
                  smart_placement: bool = False,
                  average_dense: bool = True,
                  average_sparse: bool = True,
                  asynchronous: bool = False,
                  name: str = "ps") -> GraphSyncPlan:
    """Everything on parameter servers (TF-PS when both flags are off,
    OptPS when both are on; ``asynchronous=True`` for async SGD)."""
    methods = {name_: SyncMethod.PS for name_ in classify_variables(graph)}
    return GraphSyncPlan(name, methods, local_aggregation, smart_placement,
                         average_dense, average_sparse, asynchronous)


def ar_graph_plan(graph: Graph, average_dense: bool = True,
                  average_sparse: bool = True,
                  fusion: bool = False,
                  fusion_buffer_mb: float = 4.0,
                  compression: Optional[str] = None,
                  compression_ratio: float = 0.1) -> GraphSyncPlan:
    """Pure collective plan (Horovod): AllReduce dense, AllGatherv sparse."""
    methods = {
        name: SyncMethod.ALLGATHERV if sparse else SyncMethod.ALLREDUCE
        for name, sparse in classify_variables(graph).items()
    }
    return GraphSyncPlan("horovod", methods, local_aggregation=False,
                         smart_placement=False, average_dense=average_dense,
                         average_sparse=average_sparse, fusion=fusion,
                         fusion_buffer_mb=fusion_buffer_mb,
                         compression=compression,
                         compression_ratio=compression_ratio)
