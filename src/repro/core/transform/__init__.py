"""Automatic graph transformation (paper section 4.3).

Takes a user's single-GPU graph and rewrites it for distributed execution
according to a synchronization plan:

* **AR rule** -- replicate main computation per GPU; insert ``allreduce``
  (or ``allgatherv``) ops between gradient producers and per-replica
  update ops (paper Figure 4).
* **PS rule** -- replicate main computation per GPU; place variables and
  their update ops on servers; rewrite embedding lookups into server-side
  ``shard_lookup`` ops plus a worker-side ``stitch``; insert per-machine
  ``local_agg`` and per-server ``global_agg`` ops (paper Figure 5).
* **Hybrid rule** -- apply the AR rule to dense variables and the PS rule
  to sparse ones within the same graph (paper Figure 6).
"""

from repro.core.transform.plan import GraphSyncPlan, classify_variables
from repro.core.transform.transform import transform_graph, TransformedGraph

__all__ = [
    "GraphSyncPlan",
    "classify_variables",
    "transform_graph",
    "TransformedGraph",
]
