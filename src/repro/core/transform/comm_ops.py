"""Distributed op kernels inserted by the graph transformation.

These ops execute *for real* in the functional plane: ``allreduce`` runs
the chunked ring algorithm over every replica's gradient, ``global_agg``
implements the server-side accumulator, ``shard_lookup``/``stitch``
implement the partitioned embedding read (TF's dynamic_partition /
per-shard gather / dynamic_stitch pattern the paper's theta2-cost comes
from).

Collective kernels appear once per replica in the graph (so placement is
explicit per GPU) but execute the underlying algorithm once per run,
sharing results through the session's run cache.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.comm.allgatherv import ring_allgatherv
from repro.comm.allreduce import ring_allreduce
from repro.comm.compression import (
    decompress,
    exchange_payloads,
    make_compressor,
)
from repro.graph.executor import register_direct
from repro.graph.gradients import register_custom_grad
from repro.graph.ops import register_forward
from repro.tensor.sparse import IndexedSlices, concat_slices, to_dense


def _replica_machines(op, runtime) -> List[int]:
    """Machine of each collective participant, from the recorded devices."""
    return [int(m) for m in op.attrs["machines"]]


@register_forward("allreduce")
def _allreduce_fwd(op, inputs, runtime):
    """Ring AllReduce across replicas; this op returns replica r's copy."""
    cache = runtime.run_cache.setdefault("collectives", {})
    key = ("allreduce", op.attrs["group"])
    if key not in cache:
        transcript = getattr(runtime, "transcript", None)
        reduced = ring_allreduce(
            [np.asarray(v) for v in inputs],
            machines=_replica_machines(op, runtime),
            transcript=transcript,
            tag=f"allreduce/{op.attrs['group']}",
        )
        if op.attrs.get("average", False):
            reduced = [r / np.float32(len(inputs)) for r in reduced]
        cache[key] = reduced
    return cache[key][op.attrs["replica"]]


@register_forward("allgatherv")
def _allgatherv_fwd(op, inputs, runtime):
    """Ring AllGatherv of IndexedSlices; returns replica r's copy."""
    cache = runtime.run_cache.setdefault("collectives", {})
    key = ("allgatherv", op.attrs["group"])
    if key not in cache:
        transcript = getattr(runtime, "transcript", None)
        gathered = ring_allgatherv(
            list(inputs),
            machines=_replica_machines(op, runtime),
            transcript=transcript,
            tag=f"allgatherv/{op.attrs['group']}",
        )
        if op.attrs.get("average", False):
            gathered = [g.scale(1.0 / len(inputs)) for g in gathered]
        cache[key] = gathered
    return cache[key][op.attrs["replica"]]


@register_forward("fused_allreduce")
def _fused_allreduce_fwd(op, inputs, runtime):
    """One ring pass over a packed (fused) dense-gradient bucket.

    Inputs are each replica's concatenated bucket gradients.  The op's
    compile-time permutation (``fused_segment_layout``) groups every
    segment's ring chunk ``c`` contiguously, so a single ring pass sends
    one fused message per step -- the Transcript records one transfer per
    (step, worker) for the whole bucket -- while performing exactly the
    per-segment additions of unfused AllReduce.  Results are therefore
    bit-identical to per-variable collectives.
    """
    cache = runtime.run_cache.setdefault("collectives", {})
    key = ("fused_allreduce", op.attrs["group"])
    if key not in cache:
        transcript = getattr(runtime, "transcript", None)
        perm, inv_perm = op.attrs["perm"], op.attrs["inv_perm"]
        packed = [np.asarray(v).reshape(-1)[perm] for v in inputs]
        reduced = ring_allreduce(
            packed,
            machines=_replica_machines(op, runtime),
            transcript=transcript,
            tag=f"allreduce/{op.attrs['group']}",
            bounds=op.attrs["bounds"],
        )
        results = [r[inv_perm] for r in reduced]
        if op.attrs.get("average", False):
            results = [r / np.float32(len(inputs)) for r in results]
        cache[key] = results
    return cache[key][op.attrs["replica"]]


@register_forward("grad_compress")
def _grad_compress_fwd(op, inputs, runtime):
    """Compress one replica's gradient into its wire payload.

    Dense gradients (plain arrays, including packed fusion buffers)
    compress element-wise; sparse IndexedSlices gradients compress at row
    granularity.  When the codec carries error feedback (top-k), the
    residual variable named by ``attrs["residual"]`` -- per-replica state
    in this replica's store -- is folded into the gradient before
    selection and updated to exactly the unsent remainder, so
    ``decompress(payload) + residual_after == gradient + residual_before``
    holds bit-for-bit in fp32 (and to fp16 rounding under "+fp16").
    """
    compressor = make_compressor(op.attrs["codec"], op.attrs["ratio"])
    value = inputs[0]
    residual_name = op.attrs.get("residual")

    if isinstance(value, IndexedSlices):
        combined = value.combine()
        if residual_name is None:
            dense = combined.to_dense()
            return compressor.encode_rows(dense, touched=combined.indices)
        acc = runtime.read_variable(residual_name)
        np.add.at(acc, combined.indices, combined.values)
        payload = compressor.encode_rows(acc)
        if payload.indices is not None and payload.indices.size:
            acc[payload.indices] -= payload.values.astype(np.float32)
        runtime.write_variable(residual_name, acc)
        return payload

    arr = np.asarray(value)
    if residual_name is None:
        return compressor.encode_flat(arr)
    acc = runtime.read_variable(residual_name)
    compensated = acc + arr
    payload = compressor.encode_flat(compensated)
    residual = compensated.reshape(-1)
    residual[payload.indices] -= payload.values.astype(np.float32)
    runtime.write_variable(residual_name, residual.reshape(arr.shape))
    return payload


@register_forward("compressed_allreduce")
def _compressed_allreduce_fwd(op, inputs, runtime):
    """Compressed dense collective.

    Two wire schedules, picked by payload kind:

    * ``"dense"`` payloads (pure fp16 quantization) ride the real ring:
      values quantize once at the source, the ring sums the quantized
      values in fp32 (the NCCL half-precision ring keeps fp32
      accumulators), and every chunk crosses the wire at two bytes per
      element.
    * Sparsified payloads (top-k) cannot ride a ring reduction -- a sum
      of top-k sets is not top-k -- so each payload travels the ring
      allgather-style (``nbytes * (N-1)`` link crossings, recorded by
      :func:`~repro.comm.compression.exchange_payloads`) and every
      replica performs the identical decompress-and-sum in replica
      order.

    Either way all replicas hold the same reduced array bit for bit, on
    every execution backend.
    """
    cache = runtime.run_cache.setdefault("collectives", {})
    key = ("compressed_allreduce", op.attrs["group"])
    if key not in cache:
        transcript = getattr(runtime, "transcript", None)
        tag = f"compressed_allreduce/{op.attrs['group']}"
        machines = _replica_machines(op, runtime)
        average = op.attrs.get("average", False)
        n = np.float32(len(inputs))
        if all(p.kind == "dense" for p in inputs):
            reduced = ring_allreduce(
                [decompress(p) for p in inputs],
                machines=machines, transcript=transcript, tag=tag,
                wire_itemsize=inputs[0].values.dtype.itemsize,
            )
            if average:
                reduced = [r / n for r in reduced]
        else:
            exchange_payloads(inputs, machines, transcript, tag)
            total = decompress(inputs[0])
            for payload in inputs[1:]:
                total = total + decompress(payload)
            if average:
                total = total / n
            reduced = [total] * len(inputs)
        cache[key] = reduced
    return cache[key][op.attrs["replica"]]


@register_forward("compressed_allgatherv")
def _compressed_allgatherv_fwd(op, inputs, runtime):
    """Compressed sparse collective: gather row payloads, concatenate."""
    cache = runtime.run_cache.setdefault("collectives", {})
    key = ("compressed_allgatherv", op.attrs["group"])
    if key not in cache:
        transcript = getattr(runtime, "transcript", None)
        exchange_payloads(inputs, _replica_machines(op, runtime),
                          transcript,
                          f"compressed_allgatherv/{op.attrs['group']}")
        gathered = concat_slices([decompress(p) for p in inputs])
        if op.attrs.get("average", False):
            gathered = gathered.scale(1.0 / len(inputs))
        cache[key] = gathered
    return cache[key]


@register_forward("bucket_slice")
def _bucket_slice_fwd(op, inputs, runtime):
    """Unpack one variable's reduced gradient from a fused bucket."""
    lo, hi = op.attrs["lo"], op.attrs["hi"]
    return np.asarray(inputs[0])[lo:hi].reshape(op.attrs["shape"])


@register_forward("densify")
def _densify_fwd(op, inputs, runtime):
    """IndexedSlices -> dense array (the sparse-as-dense AR path)."""
    return to_dense(inputs[0])


@register_forward("local_agg")
def _local_agg_fwd(op, inputs, runtime):
    """Per-machine aggregation before pushing to servers (paper sec. 4.3).

    Sparse gradients are concatenated and duplicate indices combined --
    this dedup is exactly the transfer saving local aggregation buys.
    Dense gradients are summed.
    """
    if isinstance(inputs[0], IndexedSlices):
        return concat_slices(list(inputs)).combine()
    total = np.array(inputs[0], copy=True)
    for value in inputs[1:]:
        total = total + value
    return total


@register_forward("global_agg")
def _global_agg_fwd(op, inputs, runtime):
    """Server-side accumulator: aggregates per-machine (or per-worker)
    contributions for one variable/shard."""
    if isinstance(inputs[0], IndexedSlices):
        combined = concat_slices(list(inputs)).combine()
        if op.attrs.get("average", False):
            combined = combined.scale(1.0 / op.attrs["num_workers"])
        return combined
    total = np.array(inputs[0], copy=True)
    for value in inputs[1:]:
        total = total + value
    if op.attrs.get("average", False):
        total = total / np.float32(op.attrs["num_workers"])
    return total


@register_forward("shard_lookup")
def _shard_lookup_fwd(op, inputs, runtime):
    """Server-side gather of the rows of one shard a batch needs.

    Returns the shard's rows for the ids in ``[lo, hi)``, in order of
    appearance; only these rows travel to the worker.
    """
    shard, ids = inputs
    lo, hi = op.attrs["lo"], op.attrs["hi"]
    flat = np.asarray(ids, dtype=np.int64).reshape(-1)
    mask = (flat >= lo) & (flat < hi)
    return np.asarray(shard)[flat[mask] - lo]


@register_forward("stitch")
def _stitch_fwd(op, inputs, runtime):
    """Worker-side dynamic_stitch: reassemble per-shard rows in id order."""
    ids = np.asarray(inputs[0], dtype=np.int64)
    rows_per_shard = inputs[1:]
    offsets = np.asarray(op.attrs["offsets"])
    flat = ids.reshape(-1)
    owner = np.searchsorted(offsets, flat, side="right") - 1
    out = np.empty((flat.size,) + tuple(op.attrs["row_shape"]),
                   dtype=np.float32)
    for p, rows in enumerate(rows_per_shard):
        positions = np.nonzero(owner == p)[0]
        if positions.size:
            out[positions] = rows
    return out.reshape(tuple(ids.shape) + tuple(op.attrs["row_shape"]))


# ----------------------------------------------------------------------
# Direct kernels for generated plans: same computations as the generic
# kernels above with the static attrs (bounds, offsets, row shapes)
# converted once at compile time.  Collectives stay generic -- they share
# state through the run cache.
# ----------------------------------------------------------------------
@register_direct("bucket_slice")
def _bucket_slice_direct(op):
    lo, hi = op.attrs["lo"], op.attrs["hi"]
    shape = tuple(op.attrs["shape"])

    def bucket_slice_direct(buf):
        return buf[lo:hi].reshape(shape)

    return bucket_slice_direct


@register_direct("densify")
def _densify_direct(op):
    return to_dense


@register_direct("local_agg")
def _local_agg_direct(op):
    def local_agg_direct(*values):
        if isinstance(values[0], IndexedSlices):
            return concat_slices(list(values)).combine()
        total = np.array(values[0], copy=True)
        for value in values[1:]:
            total = total + value
        return total

    return local_agg_direct


@register_direct("global_agg")
def _global_agg_direct(op):
    average = bool(op.attrs.get("average", False))
    num_workers = op.attrs.get("num_workers")

    def global_agg_direct(*values):
        if isinstance(values[0], IndexedSlices):
            combined = concat_slices(list(values)).combine()
            if average:
                combined = combined.scale(1.0 / num_workers)
            return combined
        total = np.array(values[0], copy=True)
        for value in values[1:]:
            total = total + value
        if average:
            total = total / np.float32(num_workers)
        return total

    return global_agg_direct


@register_direct("shard_lookup")
def _shard_lookup_direct(op):
    lo, hi = op.attrs["lo"], op.attrs["hi"]

    def shard_lookup_direct(shard, ids):
        flat = np.asarray(ids, dtype=np.int64).reshape(-1)
        mask = (flat >= lo) & (flat < hi)
        return np.asarray(shard)[flat[mask] - lo]

    return shard_lookup_direct


@register_direct("stitch")
def _stitch_direct(op):
    offsets = np.asarray(op.attrs["offsets"])
    row_shape = tuple(op.attrs["row_shape"])

    def stitch_direct(ids, *rows_per_shard):
        ids = np.asarray(ids, dtype=np.int64)
        flat = ids.reshape(-1)
        owner = np.searchsorted(offsets, flat, side="right") - 1
        out = np.empty((flat.size,) + row_shape, dtype=np.float32)
        for p, rows in enumerate(rows_per_shard):
            positions = np.nonzero(owner == p)[0]
            if positions.size:
                out[positions] = rows
        return out.reshape(tuple(ids.shape) + row_shape)

    return stitch_direct


@register_direct("shard_lookup_grad")
def _shard_lookup_grad_direct(op):
    lo, hi = op.attrs["lo"], op.attrs["hi"]
    shape = (hi - lo,) + tuple(op.attrs["row_shape"])

    def shard_lookup_grad_direct(ids, upstream):
        flat = np.asarray(ids, dtype=np.int64).reshape(-1)
        mask = (flat >= lo) & (flat < hi)
        return IndexedSlices._wrap(np.asarray(upstream), flat[mask] - lo,
                                   shape)

    return shard_lookup_grad_direct


@register_direct("stitch_grad")
def _stitch_grad_direct(op):
    offsets = np.asarray(op.attrs["offsets"])
    shard = op.attrs["shard"]
    row_shape = tuple(op.attrs["row_shape"])

    def stitch_grad_direct(ids, upstream):
        flat = np.asarray(ids, dtype=np.int64).reshape(-1)
        owner = np.searchsorted(offsets, flat, side="right") - 1
        positions = np.nonzero(owner == shard)[0]
        grad = np.asarray(upstream).reshape((flat.size,) + row_shape)
        return grad[positions]

    return stitch_grad_direct


# ----------------------------------------------------------------------
# Custom symbolic gradients.  The generic vjp node would take the full
# shard tensor as an input, creating a bogus server->worker transfer of
# the entire variable; these builders produce gradient ops that only read
# the ids and the upstream gradient.
# ----------------------------------------------------------------------
@register_forward("shard_lookup_grad")
def _shard_lookup_grad_fwd(op, inputs, runtime):
    """Gradient of shard_lookup w.r.t. its shard: shard-local slices."""
    ids, upstream = inputs
    lo, hi = op.attrs["lo"], op.attrs["hi"]
    flat = np.asarray(ids, dtype=np.int64).reshape(-1)
    mask = (flat >= lo) & (flat < hi)
    vals = np.asarray(upstream)
    # Indices are in [0, hi-lo) by construction of the mask.
    return IndexedSlices._wrap(vals, flat[mask] - lo,
                               (hi - lo,) + tuple(op.attrs["row_shape"]))


@register_forward("stitch_grad")
def _stitch_grad_fwd(op, inputs, runtime):
    """Gradient of stitch w.r.t. one shard's rows input."""
    ids, upstream = inputs
    offsets = np.asarray(op.attrs["offsets"])
    flat = np.asarray(ids, dtype=np.int64).reshape(-1)
    owner = np.searchsorted(offsets, flat, side="right") - 1
    positions = np.nonzero(owner == op.attrs["shard"])[0]
    grad = np.asarray(upstream).reshape(
        (flat.size,) + tuple(op.attrs["row_shape"])
    )
    return grad[positions]


@register_custom_grad("shard_lookup")
def _shard_lookup_grad_builder(graph, op, acc):
    """Symbolic gradient for shard_lookup: depends on ids + upstream only.

    The resulting op lives on the worker (ambient device scope) and its
    IndexedSlices output is what flows into local/global aggregation.
    """
    ids = op.inputs[1]
    grad_op = graph.add_op(
        "shard_lookup_grad",
        [ids, acc],
        op.inputs[0].spec,
        name=f"grad/{op.name}/shard",
        attrs={
            "lo": op.attrs["lo"],
            "hi": op.attrs["hi"],
            "row_shape": op.attrs["row_shape"],
            "is_sparse": True,
        },
    )
    return [(0, grad_op.output, True)]


@register_custom_grad("stitch")
def _stitch_grad_builder(graph, op, acc):
    """Symbolic gradient for stitch: one dense rows-gradient per shard."""
    ids = op.inputs[0]
    results = []
    for p, rows_input in enumerate(op.inputs[1:]):
        grad_op = graph.add_op(
            "stitch_grad",
            [ids, acc],
            rows_input.spec,
            name=f"grad/{op.name}/shard{p}",
            attrs={
                "shard": p,
                "offsets": op.attrs["offsets"],
                "row_shape": op.attrs["row_shape"],
            },
        )
        results.append((p + 1, grad_op.output, False))
    return results
