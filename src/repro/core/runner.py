"""Functional distributed execution engine.

:class:`DistributedSession` executes a transformed graph with one variable
store per worker replica plus one for the parameter servers, routing every
variable read/write by the accessing op's device placement.  It also
records every cross-machine data movement into a
:class:`~repro.comm.transcript.Transcript` -- the byte-accounting plane
the Table 3 experiments check.

:class:`DistributedRunner` drives synchronous data-parallel training: it
shards the dataset across replicas (the ``parallax.shard`` semantics),
feeds every replica its own batch, and fetches all replica losses plus the
train op each iteration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.faults import (
    FaultPlan,
    WorkerFailureError,
    emulated_degradation_delay,
)
from repro.cluster.spec import ClusterSpec
from repro.comm.transcript import Transcript
from repro.core.backend import make_backend
from repro.core.transform.plan import GraphSyncPlan
from repro.core.transform.transform import TransformedGraph, transform_graph
from repro.graph.executor import EdgeSpec
from repro.graph.graph import Graph, Operation
from repro.graph.session import Session, VariableStore, split_replica_prefix
from repro.nn.models.common import BuiltModel
from repro.nn.optimizers import specialize_update
from repro.tensor.dense import nbytes_of

# Collectives record their own ring transfers; the generic edge recorder
# must not double-count their input edges.
_SELF_ACCOUNTING = {"allreduce", "fused_allreduce", "allgatherv",
                    "compressed_allreduce", "compressed_allgatherv"}


def apply_logical_state(session: "DistributedSession", graph: Graph,
                        values: Dict[str, np.ndarray]) -> None:
    """Write logical (base-named) values into every matching store.

    The migration primitive behind ``restore``, the elastic rescale, and
    the multiprocess workers' ``load`` command: a base name loads into
    the PS store or into *all* replica copies; names absent from
    *values* keep their current state.

    Error-feedback residuals (``.../ef_residual``) are the one
    exception to the broadcast rule: their logical value is the *sum*
    of genuinely-divergent per-replica accumulators, so the sum loads
    into replica 0 and the other replicas reset to zero -- total unsent
    gradient mass is preserved, and every backend (and every rescaled
    replica count) loads the same state identically.
    """
    from repro.comm.compression import is_residual_name

    for name in graph.variables:
        # Match the true rep<k>/ replica prefix, not any name that
        # merely starts with "rep" (a user variable named "report/w"
        # is a plain PS variable).
        replica, base = split_replica_prefix(name)
        if replica is not None:
            if base in values:
                value = np.asarray(values[base])
                if is_residual_name(base) and replica != 0:
                    value = np.zeros_like(value)
                session.replica_stores[replica].write(name, value.copy())
            continue
        if name in values:
            session.ps_store.write(name, np.asarray(values[name]).copy())


class DistributedSession(Session):
    """Executes a transformed graph across logical machines and GPUs."""

    def __init__(self, transformed: TransformedGraph, seed: int = 0,
                 transcript: Optional[Transcript] = None,
                 plan_cache_size: int = 32):
        self.transformed = transformed
        self.cluster = transformed.cluster
        self.transcript = transcript if transcript is not None else Transcript()
        # One store per replica plus one for all servers.  Stores hold the
        # full variable set; routing decides which copy an op touches.
        self.ps_store = VariableStore(transformed.graph, seed)
        self.replica_stores = [
            VariableStore(transformed.graph, seed)
            for _ in range(transformed.num_replicas)
        ]
        self._seen_edges: set = set()
        super().__init__(transformed.graph, seed=seed, store=self.ps_store,
                         plan_cache_size=plan_cache_size)

    # -- variable routing --------------------------------------------------
    def _store_for(self, op: Optional[Operation]) -> VariableStore:
        if op is None or op.device is None or not op.device.is_gpu:
            return self.ps_store
        replica = (op.device.machine * self.cluster.gpus_per_machine
                   + op.device.index)
        return self.replica_stores[replica]

    def read_variable(self, name: str) -> np.ndarray:
        return self._store_for(self._current_op).read(name)

    def write_variable(self, name: str, value: np.ndarray) -> None:
        self._store_for(self._current_op).write(name, value)

    def replica_value(self, replica: int, name: str) -> np.ndarray:
        return self.replica_stores[replica].read(name)

    def server_value(self, name: str) -> np.ndarray:
        return self.ps_store.read(name)

    # -- execution ----------------------------------------------------------
    def _begin_run(self) -> None:
        self._seen_edges = set()

    def _specialize_kernel(self, op: Operation):
        """Variable access routes by the op's device placement -- static
        graph structure, so compiled plans bind the store (and variable
        name, and update hyperparameters) at compile time instead of
        re-routing per call."""
        if op.op_type == "read_var":
            read = self._store_for(op).read
            name = op.attrs["variable"]

            def read_var_kernel(op, inputs, runtime):
                return read(name)

            return read_var_kernel
        if op.op_type in ("sgd_update", "sgd_update_sparse"):
            store = self._store_for(op)
            kernel = specialize_update(op, store.read, store.write)
            if kernel is not None:
                return kernel
        return super()._specialize_kernel(op)

    def _compile_edge_fn(self):
        """The cross-machine edge set is static graph structure, so
        compiled plans carry it per schedule entry; only byte counts (and
        the per-run dedup against fed producers) stay dynamic."""

        def static_edges(op: Operation) -> Optional[List[EdgeSpec]]:
            if op.op_type in _SELF_ACCOUNTING or op.device is None:
                return None
            edges: List[EdgeSpec] = []
            for pos, tensor in enumerate(op.inputs):
                producer = tensor.op
                if (producer.device is None
                        or producer.op_type in _SELF_ACCOUNTING):
                    continue
                if producer.device.machine == op.device.machine:
                    continue
                key = (producer.name, op.device.machine,
                       op.device.device_type, op.device.index)
                edges.append((pos, key, f"edge/{producer.op_type}",
                              producer.device.machine, op.device.machine))
            return edges or None

        return static_edges

    def _before_kernel(self, op: Operation, inputs) -> None:
        """Interpreted-path twin of the compiled edge table: record
        cross-machine edges, one transfer per (producer, consumer device)
        pair per iteration (a worker process pulls a value once and reuses
        it)."""
        if op.op_type in _SELF_ACCOUNTING or op.device is None:
            return
        for tensor, value in zip(op.inputs, inputs):
            producer = tensor.op
            if (value is None or producer.device is None
                    or producer.op_type in _SELF_ACCOUNTING):
                continue
            if producer.device.machine == op.device.machine:
                continue
            edge = (producer.name, op.device.machine, op.device.device_type,
                    op.device.index)
            if edge in self._seen_edges:
                continue
            self._seen_edges.add(edge)
            self.transcript.record(
                tag=f"edge/{producer.op_type}",
                src_machine=producer.device.machine,
                dst_machine=op.device.machine,
                nbytes=nbytes_of(value),
            )


@dataclass
class IterationResult:
    """Outcome of one synchronous training iteration."""

    iteration: int
    mean_loss: float
    replica_losses: List[float]
    wall_time: float


class DistributedRunner:
    """Synchronous data-parallel training over a transformed graph.

    This is what ``parallax.get_runner`` returns: it owns the transformed
    graph, the distributed session, and the per-replica input shards.
    """

    def __init__(
        self,
        model: BuiltModel,
        cluster: ClusterSpec,
        plan: GraphSyncPlan,
        seed: int = 0,
        transcript: Optional[Transcript] = None,
        engine: str = "compiled",
        fault_plan: Optional[FaultPlan] = None,
        backend: str = "inproc",
        plan_cache_size: int = 32,
        verify_plans: Optional[bool] = None,
    ):
        if engine not in ("compiled", "interpreted"):
            raise ValueError(
                f"unknown engine {engine!r}; expected 'compiled' or "
                "'interpreted'"
            )
        self.model = model
        self.cluster = cluster
        self.plan = plan
        self.seed = seed
        self.engine = engine
        self.fault_plan = fault_plan
        self.backend = make_backend(backend)
        self.backend_name = self.backend.name
        self.plan_cache_size = plan_cache_size
        self.verify_plans = verify_plans
        # Events fire once each; the set survives a rescale's re-__init__
        # so a replayed iteration does not re-kill the same worker.
        self._faults_fired = getattr(self, "_faults_fired", set())
        self.transformed = transform_graph(model.graph, model.loss, cluster,
                                           plan, verify=verify_plans)
        self.session = DistributedSession(self.transformed, seed=seed,
                                          transcript=transcript,
                                          plan_cache_size=plan_cache_size)
        n = self.transformed.num_replicas
        self.shards = [model.dataset.shard(n, r) for r in range(n)]
        # Placeholder routing is static: replica r's k-th dataset array
        # always feeds the same transformed placeholder.  Resolve the name
        # indirection once instead of per iteration.
        self._feed_names = [
            [self.transformed.placeholder_names[tensor.name][r]
             for tensor in model.placeholders.values()]
            for r in range(n)
        ]
        # Compile-once/execute-many: the step fetches never change, so
        # synchronous plans compile one plan (all losses + the global train
        # op) and asynchronous plans one per replica -- here, not in the
        # iteration loop.  Every step() afterwards is pure plan replay.
        if self.transformed.replica_train_ops is None:
            self._step_fetches = [
                list(self.transformed.replica_losses)
                + [self.transformed.train_op]
            ]
        else:
            self._step_fetches = [
                [self.transformed.replica_losses[r],
                 self.transformed.replica_train_ops[r]]
                for r in range(n)
            ]
        self.step_plans = []
        if engine == "compiled" and self.backend_name == "inproc":
            # Multiproc workers compile their own partitioned schedules;
            # the controller's monolithic step plans would never replay.
            self.step_plans = [self.session.compile(fetches)
                               for fetches in self._step_fetches]
            fed_names = {name
                         for names in self.transformed.placeholder_names.values()
                         for name in names}
            for step_plan in self.step_plans:
                step_plan.validate_placeholders(fed_names)
        # The backend starts last: it may snapshot runner attributes (or
        # spawn worker processes from them).
        self.backend.start(self)

    @property
    def num_replicas(self) -> int:
        return self.transformed.num_replicas

    @property
    def transcript(self) -> Transcript:
        return self.session.transcript

    def feeds_for(self, iteration: int) -> Dict[str, np.ndarray]:
        """Per-replica placeholder feeds for one iteration."""
        feeds: Dict[str, np.ndarray] = {}
        batch_size = self.model.batch_size
        for r, names in enumerate(self._feed_names):
            batch = self.shards[r].batch(batch_size, iteration)
            if len(batch) != len(names):
                raise ValueError(
                    f"dataset yields {len(batch)} arrays but the model has "
                    f"{len(names)} placeholders"
                )
            for name, array in zip(names, batch):
                feeds[name] = array
        return feeds

    def step(self, iteration: int) -> IterationResult:
        """Run one training iteration.

        Synchronous plans fetch every replica's loss plus the global train
        op in one execution (all workers see the same variable snapshot).
        Asynchronous plans step workers one after another: each applies
        its own gradients before the next worker reads the variables, so
        later workers see fresher (and earlier iterations' workers see
        staler) state -- the staleness the paper's section 2.1 discusses.

        When a :class:`FaultPlan` is installed, scheduled events for this
        iteration fire first: a worker kill notes itself into the
        transcript and raises :class:`WorkerFailureError` (each event at
        most once -- recovery replays the iteration without re-dying),
        and newly active NIC degradations are noted so the byte record
        carries the failure timeline it was produced under.

        *Where* the step executes is the installed
        :class:`~repro.core.backend.ExecutionBackend`'s business: the
        default ``inproc`` backend replays compiled plans in this
        process; the ``multiproc`` backend drives one worker process per
        replica and returns the same losses bit for bit.
        """
        self._inject_faults(iteration)
        start = time.perf_counter()
        cursor = self.transcript.cursor()
        losses = self.backend.run_step(iteration)
        delay = self._emulated_degradation_delay(iteration, cursor)
        if delay > 0.0:
            time.sleep(delay)
        return IterationResult(
            iteration=iteration,
            mean_loss=float(np.mean(losses)),
            replica_losses=losses,
            wall_time=time.perf_counter() - start,
        )

    def _emulated_degradation_delay(self, iteration: int, cursor) -> float:
        """Wall-clock price of this step's scheduled NIC degradation.

        Off unless ``emulate_nic_bw`` is set (the default): scheduled
        degradations are then only *noted*, never paid for.  When on,
        the step's network transfers (the transcript delta since
        *cursor*) are charged the extra wire time a ``factor``-degraded
        NIC would add -- the exact formula the autopilot's planner
        prices candidates with, so its predictions match what this
        sleep costs.  Degradations on machines outside the current
        fleet don't count: rescaling away a degraded machine escapes
        its window.
        """
        if self.fault_plan is None or self.emulate_nic_bw is None:
            return 0.0
        factor = self.fault_plan.cluster_nic_factor(
            iteration, self.cluster.num_machines)
        if factor >= 1.0:
            return 0.0
        transfers, _ = self.transcript.since(cursor)
        network_bytes = sum(t.nbytes for t in transfers if t.is_network)
        return emulated_degradation_delay(network_bytes, factor,
                                          self.emulate_nic_bw)

    def _inject_faults(self, iteration: int) -> None:
        """Fire this iteration's scheduled faults (each at most once)."""
        if self.fault_plan is None:
            return
        for degradation in self.fault_plan.degradations_at(iteration):
            if degradation in self._faults_fired:
                continue
            self._faults_fired.add(degradation)
            self.transcript.note(
                "fault/nic_degraded", iteration=iteration,
                machine=degradation.machine, factor=degradation.factor,
                duration=degradation.duration,
            )
        for failure in self.fault_plan.failures_at(iteration):
            if (failure in self._faults_fired
                    or failure.worker >= self.num_replicas):
                continue
            self._faults_fired.add(failure)
            machine = self.cluster.machine_of_worker(failure.worker)
            self.transcript.note(
                "fault/worker_kill", iteration=iteration,
                worker=failure.worker, machine=machine,
            )
            raise WorkerFailureError(iteration, failure.worker, machine)

    def run(self, num_iterations: int,
            start_iteration: int = 0) -> List[IterationResult]:
        return [
            self.step(i)
            for i in range(start_iteration, start_iteration + num_iterations)
        ]

    # Filled in by get_runner when it drives this runner.
    partition_search = None
    config = None
    default_save_path: Optional[str] = None
    # Bytes/second for functional NIC-degradation emulation (None = off);
    # an instance attribute survives elastic re-init like _faults_fired.
    emulate_nic_bw: Optional[float] = None

    # -- checkpointing ------------------------------------------------------
    def logical_state(self) -> Dict[str, np.ndarray]:
        """Deduplicated variable state: PS values plus replica-0 copies.

        Optimizer slot variables are included, so a save/restore round
        trip resumes training exactly.  Reads route through the
        execution backend -- under ``multiproc`` the authoritative values
        live in the worker processes, not this one.

        Error-feedback residuals diverge across replicas (each replica
        compresses its own gradient), so their logical value is the sum
        over all replica copies -- the total unsent gradient mass, the
        quantity the error-feedback convergence argument is about.
        ``apply_logical_state`` loads it back mass-preservingly.
        """
        names = self.transformed.logical_variable_names
        residuals = self.transformed.residual_variables
        wanted = set(names.values())
        for replica_names in residuals.values():
            wanted.update(replica_names)
        values = self.backend.read_variables(sorted(wanted))
        state: Dict[str, np.ndarray] = {}
        for base, name in names.items():
            if base in residuals:
                total = values[residuals[base][0]].copy()
                for other in residuals[base][1:]:
                    total += values[other]
                state[base] = total
            else:
                state[base] = values[name]
        return state

    def save(self, path: Optional[str] = None) -> str:
        """Write all logical variable values to an ``.npz`` checkpoint."""
        target = path or self.default_save_path
        if not target:
            raise ValueError("no checkpoint path given or configured")
        np.savez(target, **self.logical_state())
        return target if target.endswith(".npz") else target + ".npz"

    def restore(self, path: str, strict: bool = True) -> None:
        """Load a checkpoint into every store (servers and all replicas).

        By default the checkpoint must cover exactly the graph's logical
        variable set (the names :meth:`logical_state` writes); name
        mismatches raise ``ValueError`` listing both directions instead of
        silently restoring a partial state.  ``strict=False`` keeps the
        old best-effort behaviour: matching names load, the rest keep
        their current values.
        """
        with np.load(path) as data:
            values = {name: data[name] for name in data.files}
        if strict:
            logical = set(self.transformed.logical_variable_names)
            missing = sorted(logical - set(values))
            unexpected = sorted(set(values) - logical)
            if missing or unexpected:
                raise ValueError(
                    f"checkpoint {path!r} does not match the graph's "
                    f"variables: missing {missing}, unexpected "
                    f"{unexpected} (pass strict=False to load the "
                    "intersection)"
                )
        self._load_state(values)

    def _load_state(self, values: Dict[str, np.ndarray]) -> None:
        """Load logical (base-named) values through the backend.

        The migration primitive behind both ``restore`` and the elastic
        rescale: a base name loads into the PS store or into *all*
        replica copies (on every worker process under ``multiproc``),
        names absent from *values* keep their current state.
        """
        self.backend.load_state(values)

    def close(self) -> None:
        """Release backend resources (worker processes, transports)."""
        self.backend.shutdown()

    # -- inspection helpers (used by tests and examples) -------------------
    def replica_variable(self, replica: int, original_name: str) -> np.ndarray:
        """Current value of an AR variable on one replica."""
        names = self.transformed.replica_variables.get(original_name)
        if names is None:
            raise KeyError(f"{original_name!r} is not a replicated variable")
        name = names[replica]
        return self.backend.read_variables([name])[name]

    def server_variable(self, original_name: str) -> np.ndarray:
        """Current value of a PS variable on its server."""
        if original_name not in self.transformed.ps_placement:
            raise KeyError(f"{original_name!r} is not a PS variable")
        return self.backend.read_variables([original_name])[original_name]

    def variable_value(self, original_name: str) -> np.ndarray:
        """Current logical value of any variable (replica 0 view)."""
        if original_name in self.transformed.ps_placement:
            return self.server_variable(original_name)
        return self.replica_variable(0, original_name)
